// The load balancer (paper §IV): the intermediary between clients and
// replicas.  It routes each transaction to the live replica with the
// fewest active transactions, tags requests with the version requirement
// computed by the consistency policy, and reads version tags off replica
// responses on their way back to clients.
//
// Its state is deliberately small and soft (§IV, fault-tolerance):
// per-replica outstanding-transaction tables, the version trackers, and
// the table-set dictionary loaded once from the database catalog.  When a
// replica crashes, the load balancer reports the failure for every
// transaction outstanding there so clients can retry on live replicas.

#ifndef SCREP_REPLICATION_LOAD_BALANCER_H_
#define SCREP_REPLICATION_LOAD_BALANCER_H_

#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "core/sync_policy.h"
#include "obs/observability.h"
#include "replication/message.h"
#include "replication/shard_map.h"
#include "runtime/runtime.h"

namespace screp {

/// How the load balancer picks a replica for a new transaction.
enum class RoutingPolicy {
  /// Fewest outstanding transactions (paper default).
  kLeastActive = 0,
  /// Cyclic assignment ignoring load.
  kRoundRobin,
};

/// Overload protection at the load balancer.  Both knobs default to 0
/// ("unbounded"), which reproduces the pre-flow-control behavior exactly:
/// every arrival dispatches immediately and nothing is ever queued or
/// shed at admission.
struct AdmissionConfig {
  /// Per-replica outstanding window: a replica holding this many
  /// transactions accepts no further dispatches, so arrivals wait in the
  /// admission queue instead of piling onto replica queues.
  int max_outstanding_per_replica = 0;
  /// Bound on the admission queue; arrivals finding it full are shed
  /// with TxnOutcome::kOverloaded.  Only meaningful with the window on;
  /// 0 leaves the queue unbounded.
  size_t admission_queue_limit = 0;
};

/// Client-facing router + consistency tagger.
class LoadBalancer {
 public:
  using DispatchCallback = std::function<void(
      ReplicaId replica, const TxnRequest&, DbVersion required_version)>;
  /// Sharded dispatch: the scalar tag becomes one (shard, version)
  /// requirement per shard the transaction touches.
  using ShardedDispatchCallback = std::function<void(
      ReplicaId replica, const TxnRequest&,
      std::vector<std::pair<ShardId, DbVersion>> shard_required)>;
  using ClientResponseCallback = std::function<void(const TxnResponse&)>;

  LoadBalancer(runtime::Runtime* rt, ConsistencyLevel level, size_t table_count,
               int replica_count,
               RoutingPolicy routing = RoutingPolicy::kLeastActive,
               DbVersion staleness_bound = 0,
               AdmissionConfig admission = AdmissionConfig{});

  /// Wires request dispatch to replica proxies.
  void SetDispatchCallback(DispatchCallback cb) {
    dispatch_cb_ = std::move(cb);
  }
  /// Wires responses back to clients.
  void SetClientResponseCallback(ClientResponseCallback cb) {
    client_response_cb_ = std::move(cb);
  }
  /// Wires sharded request dispatch; used instead of the scalar callback
  /// once EnableSharding has been called.
  void SetShardedDispatchCallback(ShardedDispatchCallback cb) {
    sharded_dispatch_cb_ = std::move(cb);
  }

  /// Switches the balancer into partitioned-certification mode: requests
  /// route by the transaction's declared table-set to replicas hosting
  /// every touched shard, and version tags become per-shard.  `hosted`
  /// gives each replica's shard-set (empty outer vector, or an empty
  /// inner vector, means "hosts everything" — the full-replication
  /// config, where routing degenerates to the unsharded choice among all
  /// live replicas).  `map` must outlive the balancer.
  void EnableSharding(const ShardMap* map,
                      std::vector<std::vector<ShardId>> hosted);
  bool sharded() const { return shard_map_ != nullptr; }

  /// Attaches the system's observability layer: routing spans plus
  /// dispatch / fail-over counters.
  void SetObservability(obs::Observability* obs);

  /// Installs the transaction-type -> table-set dictionary (resolved to
  /// table ids), obtained from the sys_tablesets catalog at startup.
  void SetTableSets(
      std::unordered_map<TxnTypeId, std::vector<TableId>> table_sets);

  /// A new client request: route by least-active-transactions among live
  /// replicas and dispatch with the version-requirement tag.  With
  /// admission control on, requests finding every live replica at its
  /// window wait in the bounded admission queue; past the bound they are
  /// shed with kOverloaded.  With no live replica at all, the request
  /// fails straight back to the client as kReplicaFailure (the load
  /// balancer's state is soft — aborting the process would turn a
  /// transient total outage into a permanent one).
  void OnClientRequest(const TxnRequest& request);

  /// A proxy's response: update trackers, relay to the client. Responses
  /// for transactions already failed over (their replica crashed) are
  /// dropped.
  void OnProxyResponse(const TxnResponse& response);

  /// Failure handling: stop routing to `replica` and fail every
  /// transaction outstanding there back to its client.
  void MarkReplicaDown(ReplicaId replica);

  /// Resume routing to `replica`.
  void MarkReplicaUp(ReplicaId replica);

  bool IsReplicaDown(ReplicaId replica) const {
    return down_[static_cast<size_t>(replica)];
  }

  /// Marks this instance as a promoted standby: the tracker state is
  /// re-initialized conservatively from `floor` (the certifier's current
  /// commit version) and responses for transactions dispatched by the
  /// dead predecessor are relayed rather than dropped.
  void PromoteFrom(DbVersion floor);

  bool promoted() const { return promoted_; }

  /// A client finished its session: drop the session tracker entry (soft
  /// state; a later request under the same SID re-creates it safely).
  void EndSession(SessionId session) { policy_.EndSession(session); }

  const SyncPolicy& policy() const { return policy_; }
  /// Transactions currently outstanding at `replica`.
  int ActiveAt(ReplicaId replica) const {
    return static_cast<int>(
        outstanding_[static_cast<size_t>(replica)].size());
  }
  int64_t dispatched_count() const { return dispatched_; }
  int64_t failed_over_count() const { return failed_over_; }
  /// Requests shed with kOverloaded at the admission queue bound.
  int64_t shed_count() const { return shed_; }
  /// Requests failed with kReplicaFailure because no replica was live.
  int64_t unroutable_count() const { return unroutable_; }
  size_t admission_queue_depth() const { return admission_queue_.size(); }
  size_t peak_admission_queue() const { return peak_admission_queue_; }

 private:
  /// What we remember about a dispatched transaction — enough to
  /// synthesize a failure response if its replica crashes.
  struct OutstandingTxn {
    TxnTypeId type = kUnknownTxnType;
    SessionId session = 0;
    int client_id = 0;
    TimePoint submit_time = 0;
  };

  /// Routing among live replicas per `routing_` (rotating tie-break).
  /// With `respect_window`, replicas at the outstanding window are
  /// skipped as if down.  `shards` (sharded mode only) restricts the
  /// candidates to replicas hosting every listed shard; null means no
  /// hosting constraint.  Returns kNoReplica when no candidate is left.
  ReplicaId PickReplica(bool respect_window,
                        const std::vector<ShardId>* shards = nullptr);

  /// True when `replica` hosts every shard in `shards`.
  bool HostsAll(size_t replica, const std::vector<ShardId>& shards) const;

  /// The declared table-set for `type`, or null when the catalog has no
  /// entry (a full-replication workload that never declared one).
  const std::vector<TableId>* TableSetFor(TxnTypeId type) const;

  /// The transaction's shard-set: its table-set's shards, or every shard
  /// when no table-set was declared (the conservative fallback — such a
  /// transaction can only route to a replica hosting everything).
  std::vector<ShardId> ShardsFor(const TxnRequest& request) const;

  /// True when `replica` may take one more transaction under the window.
  bool HasWindowRoom(size_t replica) const {
    return admission_.max_outstanding_per_replica <= 0 ||
           outstanding_[replica].size() <
               static_cast<size_t>(admission_.max_outstanding_per_replica);
  }

  /// Tags, records, and sends one admitted request to `replica`.
  void Dispatch(ReplicaId replica, const TxnRequest& request);

  /// Fails `request` straight back to the client with `outcome`
  /// (kOverloaded shed or kReplicaFailure when nothing is routable).
  void Reject(const TxnRequest& request, TxnOutcome outcome);

  /// Dispatches queued requests while some live replica has window room.
  void DrainAdmissionQueue();

  runtime::Runtime* rt_;
  SyncPolicy policy_;
  int replica_count_;
  RoutingPolicy routing_;
  AdmissionConfig admission_;
  std::vector<std::unordered_map<TxnId, OutstandingTxn>> outstanding_;
  std::vector<bool> down_;
  size_t tie_break_cursor_ = 0;
  std::unordered_map<TxnTypeId, std::vector<TableId>> table_sets_;
  /// One admission-queue entry: the request plus when it was queued (the
  /// profiler's admission-wait boundary).
  struct QueuedRequest {
    TxnRequest request;
    TimePoint enqueued = 0;
  };

  /// Requests admitted but not yet dispatchable (every live replica at
  /// its window).  FIFO; version tags are computed at dispatch time, so
  /// a queued request only ever over-waits (safe), never under-waits.
  std::deque<QueuedRequest> admission_queue_;
  size_t peak_admission_queue_ = 0;
  int64_t dispatched_ = 0;
  int64_t failed_over_ = 0;
  int64_t shed_ = 0;
  int64_t unroutable_ = 0;
  bool promoted_ = false;

  /// Sharded mode (null = single-stream; nothing below is consulted).
  const ShardMap* shard_map_ = nullptr;
  /// hosts_[replica][shard]: does the replica apply that shard's stream?
  std::vector<std::vector<bool>> hosts_;

  // Observability (all optional; null until SetObservability).
  obs::Tracer* tracer_ = nullptr;
  obs::Counter* ctr_dispatched_ = nullptr;
  obs::Counter* ctr_failed_over_ = nullptr;
  obs::Counter* ctr_shed_ = nullptr;
  obs::EventLog* event_log_ = nullptr;

  DispatchCallback dispatch_cb_;
  ShardedDispatchCallback sharded_dispatch_cb_;
  ClientResponseCallback client_response_cb_;
};

}  // namespace screp

#endif  // SCREP_REPLICATION_LOAD_BALANCER_H_
