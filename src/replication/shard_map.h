// Static shard map for partitioned certification (Sutra & Shapiro-style
// partial replication over the paper's middleware).
//
// The certification stream is split into K lanes by *table*: every table
// belongs to exactly one shard, a writeset's shard-set is the set of
// shards its tables (written, read, or range-scanned) fall into, and a
// replica may host a subset of the shards.  Tables are the partition
// unit because the paper's own fine-grained machinery (table-sets,
// per-table V_t) is already table-granular: the load balancer can
// compute a transaction's shard-set statically from its declared
// table-set, before any data is touched.
//
// The default assignment is round-robin (table t -> t mod K), which
// spreads the KvGrid/TPC-W table heat evenly; an explicit per-table
// assignment can be injected for skewed schemas.

#ifndef SCREP_REPLICATION_SHARD_MAP_H_
#define SCREP_REPLICATION_SHARD_MAP_H_

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "storage/write_set.h"

namespace screp {

/// Dense shard identifier in [0, shard_count).
using ShardId = int32_t;

/// Immutable table -> shard assignment shared by the sharded certifier,
/// the proxies, the load balancer and the auditor.
class ShardMap {
 public:
  /// Round-robin assignment: table t -> t mod shards.
  ShardMap(size_t table_count, int shards);

  /// Explicit assignment: `table_to_shard[t]` in [0, shards).
  ShardMap(std::vector<ShardId> table_to_shard, int shards);

  int shard_count() const { return shards_; }
  size_t table_count() const { return table_to_shard_.size(); }

  ShardId ShardOf(TableId table) const;

  /// Sorted distinct shards touched by `tables`.
  std::vector<ShardId> ShardsOfTables(
      const std::vector<TableId>& tables) const;

  /// Sorted distinct shards a writeset touches.  Includes the shards of
  /// its *read* keys and ranges: in serializable certification the lane
  /// owning a read's table must also vote, or a read-write conflict in
  /// that shard would go unchecked.
  std::vector<ShardId> ShardsOf(const WriteSet& ws) const;

  /// `ws` restricted to one shard: only the ops / read keys / read
  /// ranges whose tables live in `shard`, with the replication header
  /// (txn, origin) copied.  `commit_version` / `snapshot_version` are
  /// left for the caller to stamp in the shard's own version space.
  WriteSet SubWriteSet(const WriteSet& ws, ShardId shard) const;

  /// The table -> shard assignment (for the auditor's config).
  const std::vector<ShardId>& table_to_shard() const {
    return table_to_shard_;
  }

 private:
  std::vector<ShardId> table_to_shard_;
  int shards_;
};

/// Looks a shard's entry up in a sparse (shard, version) vector, the
/// representation used for per-shard commit versions and snapshots on
/// writesets, decisions and events.  Returns `missing` when absent.
DbVersion ShardVersionOf(
    const std::vector<std::pair<ShardId, DbVersion>>& versions,
    ShardId shard, DbVersion missing = 0);

}  // namespace screp

#endif  // SCREP_REPLICATION_SHARD_MAP_H_
