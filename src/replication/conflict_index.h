// Keyed conflict indexes for the two middleware hot paths (paper §IV).
//
// Certification and refresh application both answer the same question —
// "does this writeset touch a (table, key) some other writeset touched?" —
// and both answered it by brute force: the certifier rescanned its whole
// conflict window with a quadratic per-pair check, and the proxy scanned
// every pending refresh writeset.  The indexes here make both answers
// O(|writeset|) hash lookups:
//
//  * CommittedKeyIndex — the certifier's view of the conflict window:
//    (table, key) -> the *latest* committed version writing that key.
//    Because commit versions only grow, the latest version per key is
//    sufficient for first-committer-wins ("any committed write to this key
//    after my snapshot?") and reports exactly the same conflict the
//    newest-first linear scan reported.  A per-table ordered map over the
//    same entries serves the serializable mode's read-range (phantom)
//    checks.  Entries are pruned as writesets fall out of the window.
//
//  * PendingApplyIndex — the proxy's view of its un-published writesets
//    (queued, executing in an apply lane, or executed and awaiting the
//    in-order version publish).  It answers early certification ("does
//    this partial writeset conflict with a queued refresh?") and the
//    apply-lane dispatch rule ("does this writeset conflict with any
//    earlier un-published writeset?") without scanning the queue.
//
//  * WriteKeySet — a one-shot hash set over one writeset's keys, for
//    checking many other writesets against it (the proxy's abort-on-
//    arriving-refresh sweep over active transactions).

#ifndef SCREP_REPLICATION_CONFLICT_INDEX_H_
#define SCREP_REPLICATION_CONFLICT_INDEX_H_

#include <cstdint>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "common/types.h"
#include "storage/write_set.h"

namespace screp {

/// One (table, key) coordinate — the unit of write-write conflict.
struct TableKey {
  TableId table = 0;
  int64_t key = 0;
  bool operator==(const TableKey& other) const {
    return table == other.table && key == other.key;
  }
};

struct TableKeyHash {
  size_t operator()(const TableKey& tk) const {
    // splitmix64-style mix of the two coordinates.
    uint64_t x = static_cast<uint64_t>(tk.key) * 0x9e3779b97f4a7c15ULL +
                 static_cast<uint64_t>(static_cast<uint32_t>(tk.table));
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    return static_cast<size_t>(x);
  }
};

/// The certifier's index over the committed conflict window.
class CommittedKeyIndex {
 public:
  /// A conflicting committed write: the version and the transaction that
  /// produced it.
  struct Hit {
    DbVersion version = kNoVersion;
    TxnId txn = 0;
  };

  /// `track_ranges` additionally maintains the per-table ordered key maps
  /// needed for read-range (phantom) checks — only the serializable
  /// certification mode pays for them.
  explicit CommittedKeyIndex(bool track_ranges)
      : track_ranges_(track_ranges) {}

  /// Indexes a committed writeset (`ws.commit_version` assigned).
  void Insert(const WriteSet& ws);

  /// Un-indexes a writeset falling out of the conflict window.  An entry
  /// is only removed when it still points at this writeset's version — a
  /// later write to the same key keeps the key indexed.
  void Erase(const WriteSet& ws);

  /// The newest committed write after `snapshot` to any key `ws` writes;
  /// false when none (the writeset certifies under first-committer-wins).
  bool LatestWriteConflict(const WriteSet& ws, DbVersion snapshot,
                           Hit* hit) const;

  /// The newest committed write after `snapshot` to any key or scanned
  /// range `ws` *read* — the serializable mode's read-write conflict.
  /// Requires `track_ranges`.
  bool LatestReadConflict(const WriteSet& ws, DbVersion snapshot,
                          Hit* hit) const;

  size_t size() const { return latest_.size(); }
  void Clear();

 private:
  bool track_ranges_;
  /// (table, key) -> newest committed write.
  std::unordered_map<TableKey, Hit, TableKeyHash> latest_;
  /// Per-table ordered mirror of `latest_` for range queries.
  std::unordered_map<TableId, std::map<int64_t, Hit>> by_table_;
};

/// The proxy's index over un-published writesets (pending, executing, or
/// awaiting the in-order publish).  Multiple un-published writesets may
/// write the same key (at different versions), so each key maps to a
/// small version-ordered set of entries.
class PendingApplyIndex {
 public:
  /// Indexes a newly arrived writeset (state: queued).
  void Insert(const WriteSet& ws, bool is_local);

  /// Marks a writeset dispatched to an apply lane.  Dispatched writesets
  /// no longer count as "pending refresh" for early certification — the
  /// pre-lane code checked only the un-dispatched queue — but still block
  /// later conflicting dispatches until published.
  void MarkDispatched(const WriteSet& ws);

  /// Removes a writeset at publish time (its version is now V_local).
  void Erase(const WriteSet& ws);

  /// True when any key of `partial` is written by a *queued* (not yet
  /// dispatched) refresh writeset — the early-certification probe run per
  /// update statement of a local transaction.
  bool ConflictsWithQueuedRefresh(const WriteSet& partial) const;

  /// True when any key of `ws` is written by an un-published writeset
  /// with a version below `ws.commit_version` — the lane dispatch rule:
  /// such a writeset must execute first.
  bool BlockedByEarlier(const WriteSet& ws) const;

  size_t size() const { return keys_.size(); }
  void Clear() { keys_.clear(); }

 private:
  struct Slot {
    bool is_local = false;
    bool dispatched = false;
  };
  /// (table, key) -> version -> state of the writeset writing it.
  std::unordered_map<TableKey, std::map<DbVersion, Slot>, TableKeyHash>
      keys_;
};

/// A hash set over one writeset's (table, key) coordinates, for testing
/// many other writesets against it in O(|other|) each.
class WriteKeySet {
 public:
  explicit WriteKeySet(const WriteSet& ws) {
    keys_.reserve(ws.ops.size());
    for (const WriteOp& op : ws.ops) keys_.insert(TableKey{op.table, op.key});
  }

  bool Contains(TableId table, int64_t key) const {
    return keys_.count(TableKey{table, key}) != 0;
  }

  /// Equivalent to WriteSet::ConflictsWith against the indexed writeset.
  bool Intersects(const WriteSet& other) const {
    for (const WriteOp& op : other.ops) {
      if (Contains(op.table, op.key)) return true;
    }
    return false;
  }

 private:
  std::unordered_set<TableKey, TableKeyHash> keys_;
};

}  // namespace screp

#endif  // SCREP_REPLICATION_CONFLICT_INDEX_H_
