#include "replication/load_balancer.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace screp {

LoadBalancer::LoadBalancer(runtime::Runtime* rt, ConsistencyLevel level,
                           size_t table_count, int replica_count,
                           RoutingPolicy routing, DbVersion staleness_bound,
                           AdmissionConfig admission)
    : rt_(rt),
      policy_(level, table_count, staleness_bound),
      replica_count_(replica_count),
      routing_(routing),
      admission_(admission),
      outstanding_(static_cast<size_t>(replica_count)),
      down_(static_cast<size_t>(replica_count), false) {
  SCREP_CHECK(replica_count_ >= 1);
  (void)rt_;
}

void LoadBalancer::SetObservability(obs::Observability* obs) {
  if (obs == nullptr) return;
  tracer_ = obs->tracer();
  event_log_ = obs->event_log();
  obs::MetricsRegistry* registry = obs->registry();
  ctr_dispatched_ = registry->GetCounter("lb.dispatched");
  ctr_failed_over_ = registry->GetCounter("lb.failed_over");
  ctr_shed_ = registry->GetCounter("lb.shed");
}

void LoadBalancer::SetTableSets(
    std::unordered_map<TxnTypeId, std::vector<TableId>> table_sets) {
  table_sets_ = std::move(table_sets);
}

void LoadBalancer::EnableSharding(const ShardMap* map,
                                  std::vector<std::vector<ShardId>> hosted) {
  SCREP_CHECK(map != nullptr);
  shard_map_ = map;
  const size_t shards = static_cast<size_t>(map->shard_count());
  hosts_.assign(static_cast<size_t>(replica_count_),
                std::vector<bool>(shards, true));
  for (size_t r = 0; r < hosted.size() && r < hosts_.size(); ++r) {
    if (hosted[r].empty()) continue;  // empty set = hosts everything
    hosts_[r].assign(shards, false);
    for (ShardId s : hosted[r]) hosts_[r][static_cast<size_t>(s)] = true;
  }
  policy_.EnableSharding(map->table_to_shard(), map->shard_count());
}

bool LoadBalancer::HostsAll(size_t replica,
                            const std::vector<ShardId>& shards) const {
  for (ShardId s : shards) {
    if (!hosts_[replica][static_cast<size_t>(s)]) return false;
  }
  return true;
}

const std::vector<TableId>* LoadBalancer::TableSetFor(TxnTypeId type) const {
  auto it = table_sets_.find(type);
  return it == table_sets_.end() ? nullptr : &it->second;
}

std::vector<ShardId> LoadBalancer::ShardsFor(
    const TxnRequest& request) const {
  const std::vector<TableId>* table_set = TableSetFor(request.type);
  if (table_set != nullptr) return shard_map_->ShardsOfTables(*table_set);
  // No declared table-set: assume the transaction may touch anything.
  std::vector<ShardId> all(static_cast<size_t>(shard_map_->shard_count()));
  for (size_t s = 0; s < all.size(); ++s) all[s] = static_cast<ShardId>(s);
  return all;
}

ReplicaId LoadBalancer::PickReplica(bool respect_window,
                                    const std::vector<ShardId>* shards) {
  ReplicaId best = kNoReplica;
  size_t best_count = 0;
  for (int i = 0; i < replica_count_; ++i) {
    const size_t idx =
        (tie_break_cursor_ + static_cast<size_t>(i)) %
        static_cast<size_t>(replica_count_);
    if (down_[idx]) continue;
    if (shards != nullptr && !HostsAll(idx, *shards)) continue;
    if (respect_window && !HasWindowRoom(idx)) continue;
    if (routing_ == RoutingPolicy::kRoundRobin) {
      best = static_cast<ReplicaId>(idx);  // first live in rotation
      break;
    }
    const size_t count = outstanding_[idx].size();
    if (best == kNoReplica || count < best_count) {
      best = static_cast<ReplicaId>(idx);
      best_count = count;
    }
  }
  if (best == kNoReplica) return kNoReplica;
  ++tie_break_cursor_;
  return best;
}

void LoadBalancer::OnClientRequest(const TxnRequest& request) {
  // Sharded mode constrains routing to replicas hosting every shard the
  // transaction's declared table-set touches.
  std::vector<ShardId> shards;
  const std::vector<ShardId>* constraint = nullptr;
  if (sharded()) {
    shards = ShardsFor(request);
    constraint = &shards;
  }
  const ReplicaId replica = PickReplica(/*respect_window=*/true, constraint);
  if (replica != kNoReplica) {
    Dispatch(replica, request);
    return;
  }
  // No dispatchable replica.  Distinguish "every candidate is down" (the
  // request cannot succeed, fail it back) from "live candidates are all
  // at their window" (queue it, bounded).
  if (PickReplica(/*respect_window=*/false, constraint) == kNoReplica) {
    ++unroutable_;
    SCREP_LOG(kInfo) << "[lb] no live replica for txn " << request.txn_id
                     << "; failing the request back to the client";
    Reject(request, TxnOutcome::kReplicaFailure);
    return;
  }
  if (admission_.admission_queue_limit > 0 &&
      admission_queue_.size() >= admission_.admission_queue_limit) {
    Reject(request, TxnOutcome::kOverloaded);
    return;
  }
  admission_queue_.push_back({request, rt_->Now()});
  peak_admission_queue_ =
      std::max(peak_admission_queue_, admission_queue_.size());
}

void LoadBalancer::Reject(const TxnRequest& request, TxnOutcome outcome) {
  if (outcome == TxnOutcome::kOverloaded) {
    ++shed_;
    if (ctr_shed_ != nullptr) ctr_shed_->Increment();
    if (event_log_ != nullptr && event_log_->enabled()) {
      obs::Event e;
      e.kind = obs::EventKind::kShed;
      e.at = rt_->Now();
      e.txn = request.txn_id;
      e.session = request.session;
      e.detail = "lb";
      event_log_->Append(std::move(e));
    }
  }
  TxnResponse failure;
  failure.txn_id = request.txn_id;
  failure.type = request.type;
  failure.session = request.session;
  failure.client_id = request.client_id;
  failure.outcome = outcome;
  failure.submit_time = request.submit_time;
  // Straight back to the client: the request never reached a replica, so
  // failure.replica stays kNoReplica and no outstanding entry exists.
  client_response_cb_(failure);
}

void LoadBalancer::DrainAdmissionQueue() {
  while (!admission_queue_.empty()) {
    std::vector<ShardId> shards;
    const std::vector<ShardId>* constraint = nullptr;
    if (sharded()) {
      shards = ShardsFor(admission_queue_.front().request);
      constraint = &shards;
    }
    const ReplicaId replica = PickReplica(/*respect_window=*/true, constraint);
    if (replica == kNoReplica) {
      // Sharded only: the head may have become permanently unroutable (its
      // hosting replicas all died) while other queued requests could still
      // dispatch.  Fail it back and keep draining; otherwise stay FIFO.
      if (constraint != nullptr &&
          PickReplica(/*respect_window=*/false, constraint) == kNoReplica) {
        QueuedRequest dead = std::move(admission_queue_.front());
        admission_queue_.pop_front();
        ++unroutable_;
        Reject(dead.request, TxnOutcome::kReplicaFailure);
        continue;
      }
      return;
    }
    QueuedRequest queued = std::move(admission_queue_.front());
    admission_queue_.pop_front();
    if (tracer_ != nullptr) {
      tracer_->Add({.name = "lb.admission_wait",
                    .category = "lb",
                    .pid = obs::kLbPid,
                    .tid = static_cast<int64_t>(queued.request.txn_id),
                    .start = queued.enqueued,
                    .duration = rt_->Now() - queued.enqueued,
                    .txn = queued.request.txn_id});
    }
    Dispatch(replica, queued.request);
  }
}

void LoadBalancer::Dispatch(ReplicaId replica, const TxnRequest& request) {
  static const std::vector<TableId> kEmptyTableSet;
  const std::vector<TableId>* table_set = &kEmptyTableSet;
  if (policy_.level() == ConsistencyLevel::kLazyFine) {
    auto it = table_sets_.find(request.type);
    SCREP_CHECK_MSG(it != table_sets_.end(),
                    "fine-grained mode needs a table-set for txn type "
                        << request.type);
    table_set = &it->second;
  } else if (sharded()) {
    const std::vector<TableId>* declared = TableSetFor(request.type);
    if (declared != nullptr) table_set = declared;
  }
  // Tagged at dispatch (not arrival) time: a request that waited in the
  // admission queue picks up any versions acknowledged meanwhile, so it
  // can only over-wait relative to tagging on arrival — never weaker.
  std::vector<std::pair<ShardId, DbVersion>> shard_required;
  DbVersion required = 0;
  if (sharded()) {
    shard_required = policy_.ShardRequirements(
        request.session, ShardsFor(request), *table_set);
  } else {
    required = policy_.RequiredStartVersion(request.session, *table_set);
  }
  outstanding_[static_cast<size_t>(replica)][request.txn_id] =
      OutstandingTxn{request.type, request.session, request.client_id,
                     request.submit_time};
  ++dispatched_;
  if (ctr_dispatched_ != nullptr) ctr_dispatched_->Increment();
  if (tracer_ != nullptr) {
    // An instantaneous routing decision: where this transaction went.
    tracer_->Add({.name = "lb.route",
                  .category = "lb",
                  .pid = obs::kLbPid,
                  .tid = static_cast<int64_t>(request.txn_id),
                  .start = rt_->Now(),
                  .duration = 0,
                  .txn = request.txn_id,
                  .arg_name = "replica",
                  .arg_value = static_cast<int64_t>(replica)});
  }
  if (event_log_ != nullptr && event_log_->enabled()) {
    obs::Event e;
    e.kind = obs::EventKind::kRoute;
    e.at = rt_->Now();
    e.txn = request.txn_id;
    e.session = request.session;
    e.replica = replica;
    e.required_version = required;
    e.satisfied_version = policy_.system_version().SystemVersion();
    e.shard_required = shard_required;
    event_log_->Append(std::move(e));
  }
  if (sharded()) {
    sharded_dispatch_cb_(replica, request, std::move(shard_required));
  } else {
    dispatch_cb_(replica, request, required);
  }
}

void LoadBalancer::OnProxyResponse(const TxnResponse& response) {
  SCREP_CHECK(response.replica != kNoReplica);
  auto& table = outstanding_[static_cast<size_t>(response.replica)];
  auto it = table.find(response.txn_id);
  if (it == table.end()) {
    if (!promoted_) {
      // Already failed over when the replica was marked down; the client
      // has its answer.
      return;
    }
    // A promoted standby relays responses for transactions dispatched by
    // its dead predecessor (its outstanding table was soft state).
  } else {
    table.erase(it);
  }
  if (response.outcome == TxnOutcome::kCommitted) {
    if (sharded()) {
      policy_.OnCommitAcknowledgedSharded(response.session,
                                          response.shard_locals,
                                          response.written_table_versions);
    } else {
      policy_.OnCommitAcknowledged(response.session, response.v_local_after,
                                   response.written_table_versions);
    }
    if (event_log_ != nullptr && event_log_->enabled()) {
      obs::Event e;
      e.kind = obs::EventKind::kSessionUpdate;
      e.at = rt_->Now();
      e.txn = response.txn_id;
      e.session = response.session;
      e.replica = response.replica;
      e.satisfied_version = policy_.sessions().RequiredVersion(response.session);
      e.shard_versions = response.shard_locals;
      event_log_->Append(std::move(e));
    }
  }
  client_response_cb_(response);
  // The finished transaction freed one window slot at its replica.
  if (!admission_queue_.empty()) DrainAdmissionQueue();
}

void LoadBalancer::PromoteFrom(DbVersion floor) {
  promoted_ = true;
  policy_.SetConservativeFloor(floor);
}

void LoadBalancer::MarkReplicaDown(ReplicaId replica) {
  SCREP_CHECK(replica >= 0 && replica < replica_count_);
  down_[static_cast<size_t>(replica)] = true;
  auto& table = outstanding_[static_cast<size_t>(replica)];
  SCREP_LOG(kInfo) << "[lb] replica " << replica
                   << " marked down; failing over " << table.size()
                   << " outstanding transaction(s)";
  for (const auto& [txn_id, info] : table) {
    TxnResponse failure;
    failure.txn_id = txn_id;
    failure.type = info.type;
    failure.session = info.session;
    failure.client_id = info.client_id;
    failure.outcome = TxnOutcome::kReplicaFailure;
    failure.replica = replica;
    failure.submit_time = info.submit_time;
    ++failed_over_;
    if (ctr_failed_over_ != nullptr) ctr_failed_over_->Increment();
    client_response_cb_(failure);
  }
  table.clear();
  // Queued requests can still dispatch to the surviving replicas; only
  // when this was the last one must they fail back to their clients.
  if (PickReplica(/*respect_window=*/false) == kNoReplica) {
    std::deque<QueuedRequest> queued;
    queued.swap(admission_queue_);
    for (const QueuedRequest& entry : queued) {
      ++unroutable_;
      Reject(entry.request, TxnOutcome::kReplicaFailure);
    }
  } else if (!admission_queue_.empty()) {
    DrainAdmissionQueue();
  }
}

void LoadBalancer::MarkReplicaUp(ReplicaId replica) {
  SCREP_CHECK(replica >= 0 && replica < replica_count_);
  down_[static_cast<size_t>(replica)] = false;
  if (!admission_queue_.empty()) DrainAdmissionQueue();
}

}  // namespace screp
