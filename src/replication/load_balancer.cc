#include "replication/load_balancer.h"

#include "common/logging.h"

namespace screp {

LoadBalancer::LoadBalancer(Simulator* sim, ConsistencyLevel level,
                           size_t table_count, int replica_count,
                           RoutingPolicy routing, DbVersion staleness_bound)
    : sim_(sim),
      policy_(level, table_count, staleness_bound),
      replica_count_(replica_count),
      routing_(routing),
      outstanding_(static_cast<size_t>(replica_count)),
      down_(static_cast<size_t>(replica_count), false) {
  SCREP_CHECK(replica_count_ >= 1);
  (void)sim_;
}

void LoadBalancer::SetObservability(obs::Observability* obs) {
  if (obs == nullptr) return;
  tracer_ = obs->tracer();
  event_log_ = obs->event_log();
  obs::MetricsRegistry* registry = obs->registry();
  ctr_dispatched_ = registry->GetCounter("lb.dispatched");
  ctr_failed_over_ = registry->GetCounter("lb.failed_over");
}

void LoadBalancer::SetTableSets(
    std::unordered_map<TxnTypeId, std::vector<TableId>> table_sets) {
  table_sets_ = std::move(table_sets);
}

ReplicaId LoadBalancer::PickReplica() {
  ReplicaId best = kNoReplica;
  size_t best_count = 0;
  for (int i = 0; i < replica_count_; ++i) {
    const size_t idx =
        (tie_break_cursor_ + static_cast<size_t>(i)) %
        static_cast<size_t>(replica_count_);
    if (down_[idx]) continue;
    if (routing_ == RoutingPolicy::kRoundRobin) {
      best = static_cast<ReplicaId>(idx);  // first live in rotation
      break;
    }
    const size_t count = outstanding_[idx].size();
    if (best == kNoReplica || count < best_count) {
      best = static_cast<ReplicaId>(idx);
      best_count = count;
    }
  }
  SCREP_CHECK_MSG(best != kNoReplica, "no live replica to route to");
  ++tie_break_cursor_;
  return best;
}

void LoadBalancer::OnClientRequest(const TxnRequest& request) {
  static const std::vector<TableId> kEmptyTableSet;
  const std::vector<TableId>* table_set = &kEmptyTableSet;
  if (policy_.level() == ConsistencyLevel::kLazyFine) {
    auto it = table_sets_.find(request.type);
    SCREP_CHECK_MSG(it != table_sets_.end(),
                    "fine-grained mode needs a table-set for txn type "
                        << request.type);
    table_set = &it->second;
  }
  const DbVersion required =
      policy_.RequiredStartVersion(request.session, *table_set);
  const ReplicaId replica = PickReplica();
  outstanding_[static_cast<size_t>(replica)][request.txn_id] =
      OutstandingTxn{request.type, request.session, request.client_id,
                     request.submit_time};
  ++dispatched_;
  if (ctr_dispatched_ != nullptr) ctr_dispatched_->Increment();
  if (tracer_ != nullptr) {
    // An instantaneous routing decision: where this transaction went.
    tracer_->Add({.name = "lb.route",
                  .category = "lb",
                  .pid = obs::kLbPid,
                  .tid = static_cast<int64_t>(request.txn_id),
                  .start = sim_->Now(),
                  .duration = 0,
                  .txn = request.txn_id,
                  .arg_name = "replica",
                  .arg_value = static_cast<int64_t>(replica)});
  }
  if (event_log_ != nullptr && event_log_->enabled()) {
    obs::Event e;
    e.kind = obs::EventKind::kRoute;
    e.at = sim_->Now();
    e.txn = request.txn_id;
    e.session = request.session;
    e.replica = replica;
    e.required_version = required;
    e.satisfied_version = policy_.system_version().SystemVersion();
    event_log_->Append(std::move(e));
  }
  dispatch_cb_(replica, request, required);
}

void LoadBalancer::OnProxyResponse(const TxnResponse& response) {
  SCREP_CHECK(response.replica != kNoReplica);
  auto& table = outstanding_[static_cast<size_t>(response.replica)];
  auto it = table.find(response.txn_id);
  if (it == table.end()) {
    if (!promoted_) {
      // Already failed over when the replica was marked down; the client
      // has its answer.
      return;
    }
    // A promoted standby relays responses for transactions dispatched by
    // its dead predecessor (its outstanding table was soft state).
  } else {
    table.erase(it);
  }
  if (response.outcome == TxnOutcome::kCommitted) {
    policy_.OnCommitAcknowledged(response.session, response.v_local_after,
                                 response.written_table_versions);
    if (event_log_ != nullptr && event_log_->enabled()) {
      obs::Event e;
      e.kind = obs::EventKind::kSessionUpdate;
      e.at = sim_->Now();
      e.txn = response.txn_id;
      e.session = response.session;
      e.replica = response.replica;
      e.satisfied_version = policy_.sessions().RequiredVersion(response.session);
      event_log_->Append(std::move(e));
    }
  }
  client_response_cb_(response);
}

void LoadBalancer::PromoteFrom(DbVersion floor) {
  promoted_ = true;
  policy_.SetConservativeFloor(floor);
}

void LoadBalancer::MarkReplicaDown(ReplicaId replica) {
  SCREP_CHECK(replica >= 0 && replica < replica_count_);
  down_[static_cast<size_t>(replica)] = true;
  auto& table = outstanding_[static_cast<size_t>(replica)];
  SCREP_LOG(kInfo) << "[lb] replica " << replica
                   << " marked down; failing over " << table.size()
                   << " outstanding transaction(s)";
  for (const auto& [txn_id, info] : table) {
    TxnResponse failure;
    failure.txn_id = txn_id;
    failure.type = info.type;
    failure.session = info.session;
    failure.client_id = info.client_id;
    failure.outcome = TxnOutcome::kReplicaFailure;
    failure.replica = replica;
    failure.submit_time = info.submit_time;
    ++failed_over_;
    if (ctr_failed_over_ != nullptr) ctr_failed_over_->Increment();
    client_response_cb_(failure);
  }
  table.clear();
}

void LoadBalancer::MarkReplicaUp(ReplicaId replica) {
  SCREP_CHECK(replica >= 0 && replica < replica_count_);
  down_[static_cast<size_t>(replica)] = false;
}

}  // namespace screp
