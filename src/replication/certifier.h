// The certifier (paper §IV, following Tashkent): decides update-transaction
// commits, maintains the global commit order, makes decisions durable, and
// fans refresh writesets out to the other replicas.
//
// Certification is first-committer-wins over writesets: a transaction T can
// commit iff its writeset does not write-conflict with the writesets of
// transactions that committed since T's snapshot.  Commit versions are
// dense: V_commit increases by one per certified commit.
//
// Durability is enforced here (replicas run with log forcing off): each
// certified writeset is appended to the certifier's WAL and forced to a
// simulated disk.  Forces are group-committed — all decisions waiting while
// the disk is busy share the next force.
//
// In the eager configuration the certifier additionally counts per-replica
// commit notifications and tells the originating replica when a
// transaction is *globally* committed (§IV-D).

#ifndef SCREP_REPLICATION_CERTIFIER_H_
#define SCREP_REPLICATION_CERTIFIER_H_

#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/eager_tracker.h"
#include "obs/observability.h"
#include "replication/conflict_index.h"
#include "replication/message.h"
#include "sim/resource.h"
#include "runtime/runtime.h"
#include "storage/wal.h"
#include "storage/write_set.h"

namespace screp {

/// What certification guarantees (paper §IV: the prototype provides GSI;
/// the serializable mode additionally aborts read-write conflicts, the
/// standard upgrade for workloads that are not serializable under SI).
enum class CertificationMode {
  /// Generalized snapshot isolation: first-committer-wins on write-write
  /// conflicts only.
  kGsi = 0,
  /// Update-serializability: additionally aborts a transaction whose
  /// *read set* intersects the writes of transactions committed since its
  /// snapshot (write-skew / phantom protection).
  kSerializable,
};

/// Tuning knobs for the certifier.
struct CertifierConfig {
  /// CPU time to certify one writeset (conflict check + bookkeeping).
  Duration certify_cpu_time = Micros(120);
  /// Disk time for one forced log write (shared by a group-commit batch).
  Duration log_force_time = Millis(0.8);
  /// Certification guarantee.
  CertificationMode mode = CertificationMode::kGsi;
  /// How many recent committed writesets are retained for conflict
  /// checking; transactions with snapshots older than the window are
  /// conservatively aborted (does not occur in practice).
  size_t conflict_window = 100000;
  /// DEBUG ONLY: decide by linearly rescanning the whole conflict window
  /// (the pre-index brute-force path) instead of the keyed conflict
  /// index.  Kept as the oracle for property tests and the certification
  /// microbenchmark; decisions are identical either way.
  bool linear_scan_oracle = false;
  /// Coalesce each group-commit force's refresh fan-out into one message
  /// per target replica (amortizing per-message latency exactly where
  /// the batch already exists).  Off by default: one message per
  /// writeset per target, the original fan-out schedule.
  bool refresh_batching = false;
  /// Bound on the certification intake queue (0 = unbounded).  A
  /// submission finding the CPU queue at the bound is refused on arrival
  /// with an `overloaded` decision instead of queueing — backpressure
  /// the proxy surfaces to the client as TxnOutcome::kOverloaded.
  size_t max_intake = 0;
  /// Credit-based refresh flow control (0 = off): at most this many
  /// unacknowledged refresh writesets are in flight per target replica.
  /// Fan-out past the window is deferred here and sent — coalesced into
  /// one batch — as the replica returns credits on publish, so a slow
  /// replica bounds the certifier's and its own memory instead of
  /// accumulating writesets without limit.
  size_t refresh_credit_window = 0;
  /// Cap on the writesets one disk force covers (0 = unbounded, the
  /// original behaviour: each force takes everything that accumulated
  /// while the previous one was in flight).  A finite cap trades more
  /// forces for a smoother refresh stream: unbounded group commits
  /// release their whole batch's fan-out in one burst, which at high
  /// load queues the replicas' apply lanes and inflates local update
  /// commit latency (bench/saturation --batch-sweep measures this).
  size_t max_force_batch = 0;
  /// Partitioned certification: number of certifier lanes (K).  1 (the
  /// default) runs this class — the paper's single certification stream,
  /// byte-identical to every pre-sharding configuration.  K > 1 makes
  /// the system construct a ShardedCertifier (sharded_certifier.h)
  /// instead: K lanes sharded by table, each with its own conflict
  /// window, WAL force stream and refresh fan-out, plus a sequencer for
  /// cross-shard transactions.
  int shard_lanes = 1;
};

/// Central certification service.
class Certifier {
 public:
  using DecisionCallback =
      std::function<void(ReplicaId origin, const CertDecision&)>;
  using RefreshCallback =
      std::function<void(ReplicaId target, const RefreshBatch&)>;
  using GlobalCommitCallback =
      std::function<void(ReplicaId origin, TxnId txn)>;
  using ForwardCallback = std::function<void(const WriteSet&)>;

  Certifier(runtime::Runtime* rt, CertifierConfig config, int replica_count,
            bool eager);

  /// Wires the decision channel back to replica proxies.
  void SetDecisionCallback(DecisionCallback cb) {
    decision_cb_ = std::move(cb);
  }
  /// Wires the refresh fan-out channel.
  void SetRefreshCallback(RefreshCallback cb) { refresh_cb_ = std::move(cb); }
  /// Wires global-commit notifications (eager mode only).
  void SetGlobalCommitCallback(GlobalCommitCallback cb) {
    global_commit_cb_ = std::move(cb);
  }

  /// State-machine replication: every certification request is forwarded
  /// (in processing order, before its decision is announced) to a standby
  /// certifier, which processes the identical deterministic stream.
  void SetForwardCallback(ForwardCallback cb) { forward_cb_ = std::move(cb); }

  /// Mutes/unmutes this certifier's outward channels (decision, refresh,
  /// global-commit). A standby runs muted until promoted.
  void SetMuted(bool muted) { muted_ = muted; }
  bool muted() const { return muted_; }

  /// Attaches the system's observability layer: certification and
  /// group-commit spans, abort counters and batch-size distribution.
  /// Only the active (unmuted) certifier should be attached — a standby
  /// processes the identical stream and would double-count.
  void SetObservability(obs::Observability* obs);

  /// Submits an update transaction's writeset for certification.
  /// `ws.origin` and `ws.snapshot_version` must be filled in.
  void SubmitCertification(WriteSet ws);

  /// Eager mode: a replica reports having committed `txn` (locally or as
  /// a refresh). When all live replicas have, the origin gets the
  /// global-commit notification.
  void NotifyReplicaCommitted(TxnId txn);

  /// Refresh flow control: `replica` published `credits` refresh
  /// writesets and frees that much of its window.  Deferred writesets
  /// drain to it as one coalesced batch, up to the credits available.
  void OnCreditReturned(ReplicaId replica, int credits);

  /// Membership: marks a replica crashed. Refresh fan-out skips it, and in
  /// eager mode pending global commits stop waiting for it (it will catch
  /// up from this certifier's durable log on recovery).
  void MarkReplicaDown(ReplicaId replica);

  /// Membership: marks a replica live again (recovery started).
  void MarkReplicaUp(ReplicaId replica);

  /// True when `replica` is currently marked down.
  bool IsReplicaDown(ReplicaId replica) const;

  /// Recovery catch-up: invokes `sink` with every committed writeset with
  /// commit_version in (from, CommitVersion()], in version order. Serves
  /// from the in-memory window when possible, otherwise decodes the
  /// durable log.
  Status FetchSince(DbVersion from,
                    const std::function<void(const WriteSet&)>& sink) const;

  /// Latest assigned commit version.
  DbVersion CommitVersion() const { return v_commit_; }

  /// Distinct (table, key) coordinates currently indexed over the
  /// conflict window (0 in linear-scan-oracle mode).
  size_t conflict_index_size() const { return conflict_index_.size(); }
  /// Decisions retained for failover idempotence (bounded by the
  /// conflict window).
  size_t decided_size() const { return decided_.size(); }

  int64_t certified_count() const { return certified_; }
  int64_t abort_count() const { return aborts_; }
  /// Submissions refused at the intake bound (never certified).
  int64_t shed_count() const { return shed_; }
  /// Refresh credits currently available for `replica`.
  int64_t refresh_credits(ReplicaId replica) const {
    return refresh_credits_[static_cast<size_t>(replica)];
  }
  /// Refresh writesets deferred (awaiting credits) across all replicas.
  size_t deferred_refresh_total() const {
    size_t total = 0;
    for (const auto& q : deferred_refresh_) total += q.size();
    return total;
  }
  /// Aborts caused by read-write conflicts (serializable mode only).
  int64_t rw_abort_count() const { return rw_aborts_; }
  /// Aborts caused by the conflict window being exceeded (should be 0).
  int64_t window_abort_count() const { return window_aborts_; }

  const Wal& wal() const { return wal_; }
  Resource* cpu() { return &cpu_; }
  Resource* disk() { return &disk_; }

  /// Writesets certified but still waiting for the in-flight disk force
  /// (the next group-commit batch) — an instantaneous queue-depth gauge.
  size_t force_batch_pending() const { return force_batch_.size(); }

  bool eager() const { return eager_; }
  int replica_count() const { return replica_count_; }

 private:
  /// Runs after CPU service: the actual certification decision.
  void Certify(WriteSet ws);
  /// Records a decision for failover idempotence and retires decisions a
  /// full conflict window old.
  void RecordDecision(const CertDecision& decision);
  /// Appends to the durable log via group commit, then announces.  The
  /// writeset is frozen (immutable, shared) by this point: the force
  /// batch, the refresh fan-out and the conflict window all reference
  /// the same object.
  void MakeDurableAndAnnounce(WriteSetRef ws);
  /// Forces the pending batch (up to max_force_batch writesets) to
  /// disk; reschedules itself while decisions keep arriving.
  void ForceNext();
  /// Sends the commit decision + per-writeset refresh fan-out for one
  /// durable writeset (the unbatched announcement path).
  void Announce(const WriteSetRef& ws);
  /// Sends one writeset's commit decision to its origin.
  void AnnounceDecision(const WriteSet& ws);
  /// Refresh-batching: sends each live replica one message carrying the
  /// whole force batch (minus writesets it originated).
  void AnnounceRefreshBatches(const std::vector<WriteSetRef>& batch);
  /// Refuses one submission at the intake bound: an immediate
  /// `overloaded` decision, no certification, no standby forward.
  void ShedSubmission(const WriteSet& ws);
  /// Sends `ws` to `replica` now if a credit is available (or flow
  /// control is off), otherwise defers it until credits return.
  void SendRefresh(ReplicaId replica, const WriteSetRef& ws);

  runtime::Runtime* rt_;
  CertifierConfig config_;
  int replica_count_;
  bool eager_;

  Resource cpu_;
  Resource disk_;

  DbVersion v_commit_ = 0;
  /// Committed writesets, ascending by commit version, for conflict
  /// checks (pruned to config_.conflict_window).  Frozen references:
  /// the same objects flow through the force batch and the refresh
  /// fan-out without being copied again.
  std::deque<WriteSetRef> recent_;
  /// Keyed index over `recent_`: (table, key) -> newest committed write
  /// (plus per-table ordered maps in serializable mode), making a
  /// certification O(|writeset|) lookups instead of a window rescan.
  /// Not maintained in linear-scan-oracle mode.
  CommittedKeyIndex conflict_index_;

  /// Writesets certified but awaiting the in-flight disk force.
  std::vector<WriteSetRef> force_batch_;
  bool force_in_flight_ = false;

  EagerCommitTracker eager_tracker_;
  std::unordered_map<TxnId, ReplicaId> eager_origins_;
  std::vector<bool> replica_down_;

  /// Refresh flow control (only consulted when refresh_credit_window >
  /// 0): per-replica credits remaining, and writesets deferred in
  /// commit-version order until the replica returns credits.
  std::vector<int64_t> refresh_credits_;
  std::vector<std::deque<WriteSetRef>> deferred_refresh_;

  Wal wal_;
  int64_t certified_ = 0;
  int64_t aborts_ = 0;
  int64_t window_aborts_ = 0;
  int64_t rw_aborts_ = 0;
  int64_t shed_ = 0;

  /// Certification is idempotent: re-submissions after a failover get the
  /// original decision back instead of being re-decided.  Bounded: a
  /// decision is retired once certification has advanced a full conflict
  /// window past it (`decided_log_` remembers the commit version current
  /// when each decision was made, in decision order) — failover
  /// resubmissions arrive within a handful of versions, so in-window
  /// idempotence is preserved while the map stops growing with run
  /// length.
  std::unordered_map<TxnId, CertDecision> decided_;
  std::deque<std::pair<DbVersion, TxnId>> decided_log_;

  bool muted_ = false;

  /// Appends a kCertVerdict event (no-op without an event log or while
  /// muted — a standby re-decides the identical stream).
  void EmitVerdict(const WriteSet& ws, bool commit, const char* reason,
                   DbVersion conflict_version, TxnId conflict_txn);

  // Observability (all optional; null until SetObservability).
  obs::Tracer* tracer_ = nullptr;
  obs::EventLog* event_log_ = nullptr;
  /// Certification-done times of commits awaiting their group-commit
  /// force, for the "certifier.force_wait" span (tracing only).
  std::unordered_map<TxnId, TimePoint> certify_done_at_;
  obs::Counter* ctr_certified_ = nullptr;
  obs::Counter* ctr_aborts_ww_ = nullptr;
  obs::Counter* ctr_aborts_rw_ = nullptr;
  obs::Counter* ctr_aborts_window_ = nullptr;
  obs::Counter* ctr_forces_ = nullptr;
  obs::Counter* ctr_shed_ = nullptr;
  Histogram* batch_size_hist_ = nullptr;
  obs::Gauge* last_batch_gauge_ = nullptr;

  DecisionCallback decision_cb_;
  RefreshCallback refresh_cb_;
  GlobalCommitCallback global_commit_cb_;
  ForwardCallback forward_cb_;
};

}  // namespace screp

#endif  // SCREP_REPLICATION_CERTIFIER_H_
