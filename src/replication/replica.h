// A replica: a standalone MVCC database instance plus its proxy.

#ifndef SCREP_REPLICATION_REPLICA_H_
#define SCREP_REPLICATION_REPLICA_H_

#include <memory>

#include "replication/proxy.h"
#include "storage/database.h"

namespace screp {

/// One node of the replicated system.
class Replica {
 public:
  Replica(runtime::Runtime* rt, ReplicaId id,
          const sql::TransactionRegistry* registry, ProxyConfig config,
          bool eager);

  ReplicaId id() const { return id_; }
  Database* db() { return db_.get(); }
  const Database* db() const { return db_.get(); }
  Proxy* proxy() { return proxy_.get(); }
  const Proxy* proxy() const { return proxy_.get(); }

 private:
  ReplicaId id_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<Proxy> proxy_;
};

}  // namespace screp

#endif  // SCREP_REPLICATION_REPLICA_H_
