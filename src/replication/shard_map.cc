#include "replication/shard_map.h"

#include <algorithm>

#include "common/logging.h"

namespace screp {

ShardMap::ShardMap(size_t table_count, int shards) : shards_(shards) {
  SCREP_CHECK_MSG(shards >= 1, "shard count must be positive");
  table_to_shard_.resize(table_count);
  for (size_t t = 0; t < table_count; ++t) {
    table_to_shard_[t] = static_cast<ShardId>(t % static_cast<size_t>(shards));
  }
}

ShardMap::ShardMap(std::vector<ShardId> table_to_shard, int shards)
    : table_to_shard_(std::move(table_to_shard)), shards_(shards) {
  SCREP_CHECK_MSG(shards >= 1, "shard count must be positive");
  for (ShardId s : table_to_shard_) {
    SCREP_CHECK_MSG(s >= 0 && s < shards_, "table assigned to shard " << s
                                               << " outside [0, " << shards_
                                               << ")");
  }
}

ShardId ShardMap::ShardOf(TableId table) const {
  SCREP_CHECK_MSG(table >= 0 &&
                      static_cast<size_t>(table) < table_to_shard_.size(),
                  "table " << table << " not covered by the shard map");
  return table_to_shard_[static_cast<size_t>(table)];
}

std::vector<ShardId> ShardMap::ShardsOfTables(
    const std::vector<TableId>& tables) const {
  std::vector<ShardId> shards;
  shards.reserve(tables.size());
  for (TableId t : tables) shards.push_back(ShardOf(t));
  std::sort(shards.begin(), shards.end());
  shards.erase(std::unique(shards.begin(), shards.end()), shards.end());
  return shards;
}

std::vector<ShardId> ShardMap::ShardsOf(const WriteSet& ws) const {
  std::vector<ShardId> shards;
  shards.reserve(ws.ops.size() + ws.read_keys.size());
  for (const WriteOp& op : ws.ops) shards.push_back(ShardOf(op.table));
  for (const auto& [table, key] : ws.read_keys) {
    (void)key;
    shards.push_back(ShardOf(table));
  }
  for (const ReadRange& range : ws.read_ranges) {
    shards.push_back(ShardOf(range.table));
  }
  std::sort(shards.begin(), shards.end());
  shards.erase(std::unique(shards.begin(), shards.end()), shards.end());
  return shards;
}

WriteSet ShardMap::SubWriteSet(const WriteSet& ws, ShardId shard) const {
  WriteSet sub;
  sub.txn_id = ws.txn_id;
  sub.origin = ws.origin;
  for (const WriteOp& op : ws.ops) {
    if (ShardOf(op.table) != shard) continue;
    sub.ops.push_back(op);
  }
  for (const auto& read : ws.read_keys) {
    if (ShardOf(read.first) != shard) continue;
    sub.read_keys.push_back(read);
  }
  for (const ReadRange& range : ws.read_ranges) {
    if (ShardOf(range.table) != shard) continue;
    sub.read_ranges.push_back(range);
  }
  return sub;
}

DbVersion ShardVersionOf(
    const std::vector<std::pair<ShardId, DbVersion>>& versions,
    ShardId shard, DbVersion missing) {
  for (const auto& [s, v] : versions) {
    if (s == shard) return v;
  }
  return missing;
}

}  // namespace screp
