#include "replication/system.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace screp {

ReplicatedSystem::ReplicatedSystem(runtime::Runtime* rt, SystemConfig config)
    : rt_(rt), config_(std::move(config)) {}

Result<std::unique_ptr<ReplicatedSystem>> ReplicatedSystem::Create(
    runtime::Runtime* rt, const SystemConfig& config,
    const SchemaBuilder& schema_builder, const TxnDefiner& txn_definer) {
  if (config.replica_count < 1) {
    return Status::InvalidArgument("need at least one replica");
  }
  auto system = std::unique_ptr<ReplicatedSystem>(
      new ReplicatedSystem(rt, config));
  const bool eager = config.level == ConsistencyLevel::kEager;
  const int shard_lanes = config.certifier.shard_lanes;
  if (shard_lanes < 1) {
    return Status::InvalidArgument("certifier.shard_lanes must be >= 1");
  }
  if (shard_lanes > 1) {
    // K > 1 swaps in the ShardedCertifier; combinations whose semantics
    // assume a single dense version stream are refused outright rather
    // than silently misbehaving.
    if (eager) {
      return Status::NotSupported(
          "partitioned certification with the eager configuration");
    }
    if (config.level == ConsistencyLevel::kBoundedStaleness) {
      return Status::NotSupported(
          "partitioned certification with bounded staleness");
    }
    if (config.standby_certifier) {
      return Status::NotSupported(
          "partitioned certification with a standby certifier");
    }
    if (config.certifier.refresh_batching) {
      return Status::NotSupported(
          "partitioned certification with refresh batching");
    }
    for (size_t r = 0; r < config.hosted_shards.size(); ++r) {
      for (ShardId s : config.hosted_shards[r]) {
        if (s < 0 || s >= shard_lanes) {
          return Status::InvalidArgument("hosted shard out of range");
        }
      }
    }
  }

  system->obs_ = std::make_unique<obs::Observability>(rt, config.obs);
  obs::Tracer* tracer = system->obs_->tracer();
  tracer->SetProcessName(obs::kLbPid, "load-balancer");
  tracer->SetProcessName(obs::kCertifierPid, "certifier");
  for (ReplicaId r = 0; r < config.replica_count; ++r) {
    tracer->SetProcessName(obs::kReplicaPidBase + r,
                           "replica-" + std::to_string(r));
  }

  // Replicas first: all populated identically and deterministically.
  for (ReplicaId r = 0; r < config.replica_count; ++r) {
    ProxyConfig proxy_config = config.proxy;
    proxy_config.seed = config.seed;
    proxy_config.attach_read_sets =
        config.certifier.mode == CertificationMode::kSerializable;
    auto replica = std::make_unique<Replica>(
        rt, r, &system->registry_, proxy_config, eager);
    SCREP_RETURN_NOT_OK(schema_builder(replica->db()));
    system->replicas_.push_back(std::move(replica));
  }

  // Prepare the workload's transactions against replica 0's catalog; the
  // registry is shared, and table ids match across replicas because the
  // schema builder runs identically on each.
  Database* db0 = system->replicas_[0]->db();
  SCREP_RETURN_NOT_OK(txn_definer(*db0, &system->registry_));

  // Persist the table-set catalog into every replica (§IV-B: "storing the
  // transaction table-set information in the database") and load it back
  // for the load balancer, resolved to table ids.
  for (auto& replica : system->replicas_) {
    SCREP_RETURN_NOT_OK(system->registry_.PersistCatalog(replica->db()));
  }
  SCREP_ASSIGN_OR_RETURN(auto name_sets,
                         sql::TransactionRegistry::LoadCatalog(*db0));
  std::unordered_map<TxnTypeId, std::vector<TableId>> id_sets;
  for (const auto& [type, names] : name_sets) {
    std::vector<TableId> ids;
    for (const std::string& name : names) {
      SCREP_ASSIGN_OR_RETURN(TableId id, db0->FindTable(name));
      ids.push_back(id);
    }
    id_sets[type] = std::move(ids);
  }

  if (shard_lanes > 1) {
    if (!config.table_to_shard.empty() &&
        config.table_to_shard.size() != db0->TableCount()) {
      return Status::InvalidArgument(
          "table_to_shard must assign every table");
    }
    system->shard_map_ =
        config.table_to_shard.empty()
            ? std::make_unique<ShardMap>(db0->TableCount(), shard_lanes)
            : std::make_unique<ShardMap>(config.table_to_shard, shard_lanes);
    // Every shard needs at least one hosting replica or its stream has
    // no apply site at all.
    if (!config.hosted_shards.empty()) {
      std::vector<bool> covered(static_cast<size_t>(shard_lanes), false);
      for (size_t r = 0;
           r < config.hosted_shards.size() &&
           r < static_cast<size_t>(config.replica_count);
           ++r) {
        if (config.hosted_shards[r].empty()) {
          covered.assign(static_cast<size_t>(shard_lanes), true);
          break;
        }
        for (ShardId s : config.hosted_shards[r]) {
          covered[static_cast<size_t>(s)] = true;
        }
      }
      if (config.hosted_shards.size() <
          static_cast<size_t>(config.replica_count)) {
        covered.assign(static_cast<size_t>(shard_lanes), true);
      }
      for (bool c : covered) {
        if (!c) return Status::InvalidArgument("unhosted shard");
      }
    }
    system->sharded_certifier_ = std::make_unique<ShardedCertifier>(
        rt, config.certifier, *system->shard_map_, config.replica_count);
    system->sharded_certifier_->SetHostedShards(config.hosted_shards);
    for (ReplicaId r = 0; r < config.replica_count; ++r) {
      std::vector<ShardId> hosted =
          static_cast<size_t>(r) < config.hosted_shards.size()
              ? config.hosted_shards[static_cast<size_t>(r)]
              : std::vector<ShardId>{};
      system->replicas_[static_cast<size_t>(r)]->proxy()->EnableSharding(
          system->shard_map_.get(), std::move(hosted));
    }
  } else {
    system->certifier_ = std::make_unique<Certifier>(
        rt, config.certifier, config.replica_count, eager);
  }
  if (config.standby_certifier) {
    if (eager) {
      return Status::NotSupported(
          "standby certifier with the eager configuration");
    }
    system->standby_certifier_ = std::make_unique<Certifier>(
        rt, config.certifier, config.replica_count, /*eager=*/false);
    // A standby runs muted: it processes the identical certification
    // stream but its announcement paths never fire, so it needs no
    // channels until promotion.
    system->standby_certifier_->SetMuted(true);
  }
  system->table_sets_ = std::move(id_sets);
  system->load_balancer_ = std::make_unique<LoadBalancer>(
      rt, config.level, db0->TableCount(), config.replica_count,
      config.routing, config.staleness_bound, config.admission);
  system->load_balancer_->SetTableSets(system->table_sets_);
  if (system->sharded_certifier_ != nullptr) {
    system->load_balancer_->EnableSharding(system->shard_map_.get(),
                                           config.hosted_shards);
  }

  system->BuildChannels();
  system->Wire();
  system->obs_->ConfigureAuditor(
      ProvidesStrongConsistency(config.level),
      config.level != ConsistencyLevel::kBoundedStaleness);
  if (system->sharded_certifier_ != nullptr) {
    std::vector<int32_t> table_to_shard(
        system->shard_map_->table_to_shard().begin(),
        system->shard_map_->table_to_shard().end());
    system->obs_->auditor()->EnableSharding(std::move(table_to_shard),
                                            shard_lanes);
  }
  system->obs_->ConfigureHealth(config.replica_count);
  system->RegisterGauges();
  system->obs_->StartSampling();
  if (config.gc_interval > 0) system->ScheduleGc();
  return system;
}

void ReplicatedSystem::RegisterGauges() {
  obs::MetricsRegistry* registry = obs_->registry();
  // All callbacks read through `this` so certifier/load-balancer failovers
  // transparently switch the gauges to the promoted instance.
  if (sharded_certifier_ != nullptr) {
    // One gauge set per lane: the whole point of sharding is that lane
    // load is independent, so a single aggregate would hide exactly the
    // imbalance these exist to expose.
    for (ShardId s = 0; s < sharded_certifier_->shard_count(); ++s) {
      const std::string prefix =
          "certifier.lane" + std::to_string(s) + ".";
      registry->RegisterCallbackGauge(prefix + "queue_depth", [this, s]() {
        return static_cast<double>(
            sharded_certifier_->lane_cpu(s)->QueueLength());
      });
      registry->RegisterCallbackGauge(prefix + "force_pending", [this, s]() {
        return static_cast<double>(
            sharded_certifier_->lane_force_pending(s));
      });
      registry->RegisterCallbackGauge(prefix + "disk_util", [this, s]() {
        return sharded_certifier_->lane_disk(s)->Utilization();
      });
      registry->RegisterCallbackGauge(prefix + "commit_version", [this, s]() {
        return static_cast<double>(
            sharded_certifier_->LaneCommitVersion(s));
      });
    }
  } else {
    registry->RegisterCallbackGauge("certifier.queue_depth", [this]() {
      return static_cast<double>(certifier_->cpu()->QueueLength());
    });
    registry->RegisterCallbackGauge("certifier.force_pending", [this]() {
      return static_cast<double>(certifier_->force_batch_pending());
    });
    registry->RegisterCallbackGauge("certifier.disk_util", [this]() {
      return certifier_->disk()->Utilization();
    });
  }
  registry->RegisterCallbackGauge("lb.outstanding", [this]() {
    int total = 0;
    for (ReplicaId r = 0; r < config_.replica_count; ++r) {
      total += load_balancer_->ActiveAt(r);
    }
    return static_cast<double>(total);
  });
  // Flow-control gauges only exist when the knobs are on, so metrics
  // snapshots of default-config runs are unchanged.
  if (config_.admission.max_outstanding_per_replica > 0) {
    registry->RegisterCallbackGauge("lb.admission_queue", [this]() {
      return static_cast<double>(load_balancer_->admission_queue_depth());
    });
  }
  if (config_.certifier.refresh_credit_window > 0) {
    registry->RegisterCallbackGauge("certifier.deferred_refresh", [this]() {
      return static_cast<double>(
          sharded_certifier_ != nullptr
              ? sharded_certifier_->deferred_refresh_total()
              : certifier_->deferred_refresh_total());
    });
  }
  for (ReplicaId r = 0; r < config_.replica_count; ++r) {
    const std::string prefix = "replica" + std::to_string(r) + ".";
    Proxy* proxy = replicas_[static_cast<size_t>(r)]->proxy();
    if (sharded_certifier_ != nullptr) {
      // Lag of the replica's most-behind hosted stream.
      registry->RegisterCallbackGauge(prefix + "version_lag",
                                      [this, proxy]() {
        DbVersion lag = 0;
        for (ShardId s : proxy->hosted_shards()) {
          const DbVersion certified =
              sharded_certifier_->LaneCommitVersion(s);
          const DbVersion published = proxy->ShardPublished(s);
          if (certified > published) {
            lag = std::max(lag, certified - published);
          }
        }
        return static_cast<double>(lag);
      });
    } else {
      registry->RegisterCallbackGauge(prefix + "version_lag",
                                      [this, proxy]() {
        return static_cast<double>(certifier_->CommitVersion() -
                                   proxy->v_local());
      });
    }
    registry->RegisterCallbackGauge(prefix + "refresh_queue", [proxy]() {
      return static_cast<double>(proxy->pending_writesets());
    });
    registry->RegisterCallbackGauge(prefix + "inflight", [proxy]() {
      return static_cast<double>(proxy->active_transactions());
    });
    registry->RegisterCallbackGauge(prefix + "cpu_queue", [proxy]() {
      return static_cast<double>(proxy->cpu()->QueueLength());
    });
    registry->RegisterCallbackGauge(prefix + "cpu_util", [proxy]() {
      return proxy->cpu()->Utilization();
    });
    registry->RegisterCallbackGauge(prefix + "apply_lanes_busy", [proxy]() {
      return static_cast<double>(proxy->apply_lanes()->Busy());
    });
    registry->RegisterCallbackGauge(prefix + "publish_backlog", [proxy]() {
      return static_cast<double>(proxy->publish_backlog());
    });
    if (config_.certifier.refresh_credit_window > 0) {
      registry->RegisterCallbackGauge(prefix + "refresh_credits",
                                      [this, proxy, r]() {
        if (sharded_certifier_ != nullptr) {
          int64_t total = 0;
          for (ShardId s : proxy->hosted_shards()) {
            total += sharded_certifier_->refresh_credits(s, r);
          }
          return static_cast<double>(total);
        }
        return static_cast<double>(certifier_->refresh_credits(r));
      });
    }
  }
}

void ReplicatedSystem::BuildChannels() {
  const NetworkConfig& net = config_.network;
  obs::MetricsRegistry* registry = obs_->registry();
  // Per-channel RNG streams forked deterministically from the network
  // seed, in fixed construction order.
  Rng seeder(net.seed);

  lb_endpoint_ = std::make_unique<net::Endpoint>("lb");
  certifier_endpoint_ = std::make_unique<net::Endpoint>("certifier");
  client_endpoint_ = std::make_unique<net::Endpoint>("clients");
  for (ReplicaId r = 0; r < config_.replica_count; ++r) {
    replica_endpoints_.push_back(std::make_unique<net::Endpoint>(
        "replica" + std::to_string(r)));
  }
  partitioned_.assign(static_cast<size_t>(config_.replica_count), false);

  // Handlers read the component pointers through `this`, so a promoted
  // LB or certifier keeps receiving over the same channels, and messages
  // in flight across a failover land on the successor (as before).
  ch_client_lb_ = std::make_unique<net::Channel<TxnRequest>>(
      rt_, "client_lb", net.client_lb, seeder.Next());
  ch_client_lb_->SetDestination(lb_endpoint_.get());
  ch_client_lb_->SetHandler([this](const TxnRequest& request) {
    load_balancer_->OnClientRequest(request);
  });
  ch_client_lb_->AttachMetrics(registry);

  ch_lb_client_ = std::make_unique<net::Channel<TxnResponse>>(
      rt_, "lb_client", net.client_lb, seeder.Next());
  ch_lb_client_->SetDestination(client_endpoint_.get());
  ch_lb_client_->SetHandler([this](const TxnResponse& response) {
    RecordHistory(response, rt_->Now());
    if (client_cb_) client_cb_(response);
  });
  ch_lb_client_->AttachMetrics(registry);

  for (ReplicaId r = 0; r < config_.replica_count; ++r) {
    const std::string tag = ".r" + std::to_string(r);
    net::Endpoint* replica_ep = replica_endpoints_[static_cast<size_t>(r)]
                                    .get();

    auto dispatch = std::make_unique<net::Channel<RoutedRequest>>(
        rt_, "dispatch" + tag, net.lb_replica, seeder.Next());
    dispatch->SetDestination(replica_ep);
    dispatch->SetHandler([this, r](const RoutedRequest& routed) {
      Proxy* proxy = replicas_[static_cast<size_t>(r)]->proxy();
      if (proxy->sharded()) {
        proxy->OnTxnRequestSharded(routed.request, routed.shard_required);
      } else {
        proxy->OnTxnRequest(routed.request, routed.required_version);
      }
    });
    dispatch->AttachMetrics(registry);
    ch_dispatch_.push_back(std::move(dispatch));

    auto response = std::make_unique<net::Channel<TxnResponse>>(
        rt_, "response" + tag, net.lb_replica, seeder.Next());
    response->SetDestination(lb_endpoint_.get());
    response->SetHandler([this](const TxnResponse& resp) {
      load_balancer_->OnProxyResponse(resp);
    });
    response->AttachMetrics(registry);
    ch_response_.push_back(std::move(response));

    auto cert_request = std::make_unique<net::Channel<WriteSet>>(
        rt_, "certreq" + tag, net.replica_certifier, seeder.Next());
    cert_request->SetDestination(certifier_endpoint_.get());
    cert_request->SetSizeFn(
        [](const WriteSet& ws) { return ws.SerializedBytes(); });
    cert_request->SetHandler([this](const WriteSet& ws) {
      if (sharded_certifier_ != nullptr) {
        sharded_certifier_->SubmitCertification(ws);
      } else {
        certifier_->SubmitCertification(ws);
      }
    });
    cert_request->AttachMetrics(registry);
    ch_cert_request_.push_back(std::move(cert_request));

    auto commit_notice = std::make_unique<net::Channel<TxnId>>(
        rt_, "commit_notice" + tag, net.replica_certifier, seeder.Next());
    commit_notice->SetDestination(certifier_endpoint_.get());
    commit_notice->SetHandler([this](const TxnId& txn) {
      certifier_->NotifyReplicaCommitted(txn);
    });
    commit_notice->AttachMetrics(registry);
    ch_commit_notice_.push_back(std::move(commit_notice));

    auto decision = std::make_unique<net::Channel<CertDecision>>(
        rt_, "decision" + tag, net.replica_certifier, seeder.Next());
    decision->SetDestination(replica_ep);
    decision->SetHandler([this, r](const CertDecision& d) {
      replicas_[static_cast<size_t>(r)]->proxy()->OnCertDecision(d);
    });
    decision->AttachMetrics(registry);
    ch_decision_.push_back(std::move(decision));

    auto refresh = std::make_unique<net::Channel<RefreshBatch>>(
        rt_, "refresh" + tag, net.refresh, seeder.Next());
    refresh->SetDestination(replica_ep);
    refresh->SetSizeFn(
        [](const RefreshBatch& batch) { return batch.SerializedBytes(); });
    refresh->SetHandler([this, r](const RefreshBatch& batch) {
      replicas_[static_cast<size_t>(r)]->proxy()->OnRefreshBatch(batch);
    });
    refresh->AttachMetrics(registry);
    ch_refresh_.push_back(std::move(refresh));

    auto global_commit = std::make_unique<net::Channel<TxnId>>(
        rt_, "global_commit" + tag, net.replica_certifier, seeder.Next());
    global_commit->SetDestination(replica_ep);
    global_commit->SetHandler([this, r](const TxnId& txn) {
      replicas_[static_cast<size_t>(r)]->proxy()->OnGlobalCommit(txn);
    });
    global_commit->AttachMetrics(registry);
    ch_global_commit_.push_back(std::move(global_commit));
  }

  // Primary -> standby certification stream (state-machine replication).
  // A forward still in flight when the standby is promoted lands on the
  // promoted certifier instead, where idempotent certification absorbs
  // it.
  ch_forward_ = std::make_unique<net::Channel<WriteSet>>(
      rt_, "standby_forward", net.replica_certifier, seeder.Next());
  ch_forward_->SetSizeFn(
      [](const WriteSet& ws) { return ws.SerializedBytes(); });
  ch_forward_->SetHandler([this](const WriteSet& ws) {
    Certifier* target = standby_certifier_ != nullptr
                            ? standby_certifier_.get()
                            : certifier_.get();
    target->SubmitCertification(ws);
  });
  ch_forward_->AttachMetrics(registry);

  // Replica -> certifier refresh-credit returns (flow control).  Built
  // in its own loop AFTER every pre-existing channel: each construction
  // consumes one fork of the network seeder, so appending here keeps the
  // per-channel RNG streams — and thus every default-config run —
  // identical to before flow control existed.
  for (ReplicaId r = 0; r < config_.replica_count; ++r) {
    auto credit = std::make_unique<net::Channel<int>>(
        rt_, "credit.r" + std::to_string(r), net.replica_certifier,
        seeder.Next());
    credit->SetDestination(certifier_endpoint_.get());
    credit->SetHandler([this, r](const int& credits) {
      certifier_->OnCreditReturned(r, credits);
    });
    credit->AttachMetrics(registry);
    ch_credit_.push_back(std::move(credit));
  }

  // Per-(shard, replica) refresh streams and credit returns — only in
  // sharded mode, so K = 1 builds exactly the channel set (and consumes
  // exactly the seeder forks) it always did.  One channel per stream a
  // replica actually hosts: partial replication means a non-hosting
  // replica never sees the shard's traffic at all.
  if (sharded_certifier_ != nullptr) {
    const int shard_count = sharded_certifier_->shard_count();
    ch_shard_refresh_.resize(static_cast<size_t>(config_.replica_count));
    ch_shard_credit_.resize(static_cast<size_t>(config_.replica_count));
    for (ReplicaId r = 0; r < config_.replica_count; ++r) {
      ch_shard_refresh_[static_cast<size_t>(r)].resize(
          static_cast<size_t>(shard_count));
      ch_shard_credit_[static_cast<size_t>(r)].resize(
          static_cast<size_t>(shard_count));
      net::Endpoint* replica_ep =
          replica_endpoints_[static_cast<size_t>(r)].get();
      for (ShardId s = 0; s < shard_count; ++s) {
        if (!ReplicaHostsShard(r, s)) continue;
        const std::string tag =
            ".s" + std::to_string(s) + ".r" + std::to_string(r);
        auto refresh = std::make_unique<net::Channel<RefreshBatch>>(
            rt_, "refresh" + tag, net.refresh, seeder.Next());
        refresh->SetDestination(replica_ep);
        refresh->SetSizeFn([](const RefreshBatch& batch) {
          return batch.SerializedBytes();
        });
        refresh->SetHandler([this, r, s](const RefreshBatch& batch) {
          replicas_[static_cast<size_t>(r)]->proxy()->OnShardedRefreshBatch(
              s, batch);
        });
        refresh->AttachMetrics(registry);
        ch_shard_refresh_[static_cast<size_t>(r)][static_cast<size_t>(s)] =
            std::move(refresh);

        auto credit = std::make_unique<net::Channel<int>>(
            rt_, "credit" + tag, net.replica_certifier, seeder.Next());
        credit->SetDestination(certifier_endpoint_.get());
        credit->SetHandler([this, r, s](const int& credits) {
          sharded_certifier_->OnCreditReturned(s, r, credits);
        });
        credit->AttachMetrics(registry);
        ch_shard_credit_[static_cast<size_t>(r)][static_cast<size_t>(s)] =
            std::move(credit);
      }
    }
  }

  // Transport spans for the request path (tracing and the critical-path
  // profiler).  Trace fns fire on every actual delivery with the original
  // send time, so each span is the full transport delay the receiver
  // experienced — retransmissions and resequencing included.  Refresh,
  // commit-notice, global-commit and credit channels carry no per-txn
  // critical-path hop (the eager global wait is measured proxy-side), so
  // they stay untraced.
  obs::Tracer* tr = obs_->tracer();
  if (tr->active()) {
    ch_client_lb_->SetTraceFn(
        [tr](const TxnRequest& request, TimePoint sent, TimePoint at) {
          tr->Add({.name = "net.client_lb",
                   .category = "net",
                   .pid = obs::kLbPid,
                   .tid = static_cast<int64_t>(request.txn_id),
                   .start = sent,
                   .duration = at - sent,
                   .txn = request.txn_id});
        });
    ch_lb_client_->SetTraceFn(
        [tr](const TxnResponse& response, TimePoint sent, TimePoint at) {
          tr->Add({.name = "net.lb_client",
                   .category = "net",
                   .pid = obs::kLbPid,
                   .tid = static_cast<int64_t>(response.txn_id),
                   .start = sent,
                   .duration = at - sent,
                   .txn = response.txn_id});
        });
    for (ReplicaId r = 0; r < config_.replica_count; ++r) {
      const int32_t replica_pid = obs::kReplicaPidBase + r;
      ch_dispatch_[static_cast<size_t>(r)]->SetTraceFn(
          [tr, replica_pid](const RoutedRequest& routed, TimePoint sent,
                            TimePoint at) {
            tr->Add({.name = "net.dispatch",
                     .category = "net",
                     .pid = replica_pid,
                     .tid = static_cast<int64_t>(routed.request.txn_id),
                     .start = sent,
                     .duration = at - sent,
                     .txn = routed.request.txn_id});
          });
      ch_response_[static_cast<size_t>(r)]->SetTraceFn(
          [tr](const TxnResponse& response, TimePoint sent, TimePoint at) {
            tr->Add({.name = "net.response",
                     .category = "net",
                     .pid = obs::kLbPid,
                     .tid = static_cast<int64_t>(response.txn_id),
                     .start = sent,
                     .duration = at - sent,
                     .txn = response.txn_id});
          });
      ch_cert_request_[static_cast<size_t>(r)]->SetTraceFn(
          [tr](const WriteSet& ws, TimePoint sent, TimePoint at) {
            tr->Add({.name = "net.certreq",
                     .category = "net",
                     .pid = obs::kCertifierPid,
                     .tid = static_cast<int64_t>(ws.txn_id),
                     .start = sent,
                     .duration = at - sent,
                     .txn = ws.txn_id});
          });
      ch_decision_[static_cast<size_t>(r)]->SetTraceFn(
          [tr, replica_pid](const CertDecision& d, TimePoint sent,
                            TimePoint at) {
            tr->Add({.name = "net.decision",
                     .category = "net",
                     .pid = replica_pid,
                     .tid = static_cast<int64_t>(d.txn_id),
                     .start = sent,
                     .duration = at - sent,
                     .txn = d.txn_id});
          });
    }
  }
}

void ReplicatedSystem::Wire() {
  WireLoadBalancer();

  for (ReplicaId r = 0; r < config_.replica_count; ++r) {
    Proxy* proxy = replicas_[static_cast<size_t>(r)]->proxy();
    proxy->SetWaitCause(load_balancer_->policy().wait_cause());
    proxy->SetObservability(obs_.get());
    // Replica proxy -> load balancer (responses).
    proxy->SetResponseCallback([this, r](const TxnResponse& response) {
      ch_response_[static_cast<size_t>(r)]->Send(response);
    });
    // Replica proxy -> certifier (writesets + eager commit reports).
    proxy->SetCertRequestCallback([this, r](const WriteSet& ws) {
      ch_cert_request_[static_cast<size_t>(r)]->Send(ws);
    });
    proxy->SetReplicaCommittedCallback([this, r](TxnId txn) {
      ch_commit_notice_[static_cast<size_t>(r)]->Send(txn);
    });
    // Refresh flow control: only wired when the certifier runs with a
    // credit window — an unset callback keeps the proxy's refresh path
    // exactly as before.
    if (config_.certifier.refresh_credit_window > 0) {
      if (sharded_certifier_ != nullptr) {
        proxy->SetShardedCreditCallback([this, r](ShardId shard,
                                                  int credits) {
          ch_shard_credit_[static_cast<size_t>(r)]
                          [static_cast<size_t>(shard)]->Send(credits);
        });
      } else {
        proxy->SetCreditCallback([this, r](int credits) {
          ch_credit_[static_cast<size_t>(r)]->Send(credits);
        });
      }
    }
  }

  WireCertifier();
}

void ReplicatedSystem::WireLoadBalancer() {
  load_balancer_->SetObservability(obs_.get());
  // Load balancer -> replica proxy (request dispatch).
  load_balancer_->SetDispatchCallback(
      [this](ReplicaId replica, const TxnRequest& request,
             DbVersion required) {
        ch_dispatch_[static_cast<size_t>(replica)]->Send(
            RoutedRequest{request, required, {}});
      });
  load_balancer_->SetShardedDispatchCallback(
      [this](ReplicaId replica, const TxnRequest& request,
             std::vector<std::pair<ShardId, DbVersion>> shard_required) {
        ch_dispatch_[static_cast<size_t>(replica)]->Send(
            RoutedRequest{request, 0, std::move(shard_required)});
      });
  // Load balancer -> client (acknowledgments).
  load_balancer_->SetClientResponseCallback(
      [this](const TxnResponse& response) {
        ch_lb_client_->Send(response);
      });
}

void ReplicatedSystem::EmitFaultEvent(obs::EventKind kind,
                                      const char* component,
                                      ReplicaId replica) {
  obs::EventLog* log = obs_->event_log();
  if (!log->enabled()) return;
  obs::Event e;
  e.kind = kind;
  e.at = rt_->Now();
  e.replica = replica;
  e.detail = component;
  log->Append(std::move(e));
}

void ReplicatedSystem::CrashLoadBalancer() {
  SCREP_CHECK_MSG(sharded_certifier_ == nullptr,
                  "LB failover unsupported with partitioned certification");
  ++lb_failovers_;
  EmitFaultEvent(obs::EventKind::kFailover, "lb", kNoReplica);
  SCREP_LOG(kWarn) << "[system] load balancer crash (failover #"
                   << lb_failovers_ << "): promoting a standby with "
                      "conservative floor "
                   << certifier_->CommitVersion();
  // The standby holds no soft state: it learns the replica set and the
  // table-set dictionary from configuration/catalog, re-initializes its
  // version trackers conservatively from the certifier, and re-marks
  // crashed replicas (hard state it can re-probe).
  auto standby = std::make_unique<LoadBalancer>(
      rt_, config_.level, replicas_[0]->db()->TableCount(),
      config_.replica_count, config_.routing, config_.staleness_bound,
      config_.admission);
  standby->SetTableSets(table_sets_);
  standby->PromoteFrom(certifier_->CommitVersion());
  for (ReplicaId r = 0; r < config_.replica_count; ++r) {
    if (replicas_[static_cast<size_t>(r)]->proxy()->down()) {
      standby->MarkReplicaDown(r);
    }
  }
  load_balancer_ = std::move(standby);
  WireLoadBalancer();
}

void ReplicatedSystem::WireCertifier() {
  if (sharded_certifier_ != nullptr) {
    sharded_certifier_->SetObservability(obs_.get());
    sharded_certifier_->SetDecisionCallback(
        [this](ReplicaId origin, const CertDecision& decision) {
          ch_decision_[static_cast<size_t>(origin)]->Send(decision);
        });
    sharded_certifier_->SetRefreshCallback(
        [this](ShardId shard, ReplicaId target, const RefreshBatch& batch) {
          ch_shard_refresh_[static_cast<size_t>(target)]
                           [static_cast<size_t>(shard)]->Send(batch);
        });
    return;
  }
  // Only the active certifier reports: a standby processes the identical
  // stream and would double-count. On promotion the same counter names
  // continue their predecessor's totals.
  certifier_->SetObservability(obs_.get());
  // Certifier -> replicas (decisions, refresh fan-out, global commits).
  certifier_->SetDecisionCallback(
      [this](ReplicaId origin, const CertDecision& decision) {
        ch_decision_[static_cast<size_t>(origin)]->Send(decision);
      });
  certifier_->SetRefreshCallback(
      [this](ReplicaId target, const RefreshBatch& batch) {
        ch_refresh_[static_cast<size_t>(target)]->Send(batch);
      });
  certifier_->SetGlobalCommitCallback([this](ReplicaId origin, TxnId txn) {
    ch_global_commit_[static_cast<size_t>(origin)]->Send(txn);
  });
  if (standby_certifier_ != nullptr) {
    certifier_->SetForwardCallback(
        [this](const WriteSet& ws) { ch_forward_->Send(ws); });
  } else {
    certifier_->SetForwardCallback(nullptr);
  }
}

void ReplicatedSystem::CrashCertifier() {
  SCREP_CHECK_MSG(standby_certifier_ != nullptr,
                  "no standby certifier configured");
  SCREP_CHECK_MSG(!certifier_failed_over_, "certifier already failed over");
  certifier_failed_over_ = true;
  EmitFaultEvent(obs::EventKind::kFailover, "certifier", kNoReplica);
  SCREP_LOG(kWarn) << "[system] certifier crash: promoting the standby at "
                      "commit version "
                   << standby_certifier_->CommitVersion();
  // The primary is gone — muted, but kept allocated so simulated events
  // it still owns (disk completions, queued certifications) fire into
  // silence instead of freed memory. Its pending certifications forward
  // to the promoted certifier through the forward channel.
  dead_certifier_ = std::move(certifier_);
  dead_certifier_->SetMuted(true);
  dead_certifier_->SetObservability(nullptr);
  // The standby (identical deterministic state) takes over and starts
  // speaking on the real channels.
  certifier_ = std::move(standby_certifier_);
  certifier_->SetMuted(false);
  WireCertifier();
  // Replicas may have missed refreshes announced by the dead primary and
  // decisions for in-flight transactions: catch up and resubmit, one
  // failover round trip later.
  for (ReplicaId r = 0; r < static_cast<ReplicaId>(replicas_.size()); ++r) {
    Proxy* proxy = replicas_[static_cast<size_t>(r)]->proxy();
    if (proxy->down()) continue;
    rt_->Schedule(config_.network.replica_certifier.RoundTrip(),
                   [this, proxy]() {
      if (proxy->down()) return;
      const Status st = certifier_->FetchSince(
          proxy->v_local(), [proxy](const WriteSet& ws) {
            proxy->OnRefresh(ws);
          });
      SCREP_CHECK_MSG(st.ok(), "failover catch-up failed: " << st.ToString());
      proxy->ResubmitPendingCertifications();
    });
  }
}

void ReplicatedSystem::CrashReplica(ReplicaId replica) {
  SCREP_CHECK_MSG(sharded_certifier_ == nullptr,
                  "replica crash unsupported with partitioned certification");
  Proxy* proxy = replicas_[static_cast<size_t>(replica)]->proxy();
  SCREP_CHECK_MSG(!proxy->down(), "replica already down");
  SCREP_CHECK_MSG(!IsReplicaPartitioned(replica),
                  "crash of a partitioned replica is not modelled");
  SCREP_LOG(kWarn) << "[system] crash of replica " << replica;
  EmitFaultEvent(obs::EventKind::kCrash, "replica", replica);
  proxy->Crash();
  // Crash-stop at the transport: the endpoint closes, so anything still
  // addressed to the dead replica drops at its channel (counted there).
  replica_endpoints_[static_cast<size_t>(replica)]->Close();
  certifier_->MarkReplicaDown(replica);
  // The load balancer notices the failure and fails outstanding
  // transactions over to their clients (responses travel with latency).
  load_balancer_->MarkReplicaDown(replica);
}

void ReplicatedSystem::RecoverReplica(ReplicaId replica) {
  Proxy* proxy = replicas_[static_cast<size_t>(replica)]->proxy();
  SCREP_CHECK_MSG(proxy->down(), "replica is not down");
  EmitFaultEvent(obs::EventKind::kRecover, "replica", replica);
  SCREP_LOG(kInfo) << "[system] recovery of replica " << replica
                   << " from V_local=" << proxy->v_local()
                   << " (certifier at " << certifier_->CommitVersion() << ")";
  proxy->Restart();
  replica_endpoints_[static_cast<size_t>(replica)]->Open();
  // The refresh channel forgets sequencing state from before the crash:
  // a retransmission that gave up while the endpoint was closed must not
  // leave a gap stalling post-recovery traffic (catch-up re-delivers
  // everything missed).
  ch_refresh_[static_cast<size_t>(replica)]->Reset();
  // Resume the refresh flow first so nothing is missed between the catch-
  // up snapshot and new commits, then stream the missed writesets from
  // the certifier's durable log (one catch-up round trip).
  certifier_->MarkReplicaUp(replica);
  const DbVersion from = proxy->v_local();
  rt_->Schedule(config_.network.replica_certifier.RoundTrip(),
                 [this, replica, from]() {
    Proxy* p = replicas_[static_cast<size_t>(replica)]->proxy();
    if (p->down()) return;  // crashed again before catch-up started
    const DbVersion target = certifier_->CommitVersion();
    const Status st = certifier_->FetchSince(
        from, [p](const WriteSet& ws) { p->OnRefresh(ws); });
    SCREP_CHECK_MSG(st.ok(), "catch-up fetch failed: " << st.ToString());
    // The replica rejoins the routing rotation only once it is current:
    // under the eager scheme nothing else would stop a freshly recovered
    // replica from serving stale snapshots.
    p->CallWhenVersionReached(target, [this, replica]() {
      load_balancer_->MarkReplicaUp(replica);
    });
  });
}

bool ReplicatedSystem::IsReplicaDown(ReplicaId replica) const {
  return replicas_[static_cast<size_t>(replica)]->proxy()->down();
}

bool ReplicatedSystem::ReplicaHostsShard(ReplicaId replica,
                                         ShardId shard) const {
  const auto& hosted = config_.hosted_shards;
  if (static_cast<size_t>(replica) >= hosted.size()) return true;
  const auto& set = hosted[static_cast<size_t>(replica)];
  if (set.empty()) return true;  // empty set = hosts everything
  return std::find(set.begin(), set.end(), shard) != set.end();
}

void ReplicatedSystem::SetReplicaLinksPartitioned(ReplicaId replica,
                                                  bool partitioned) {
  const auto r = static_cast<size_t>(replica);
  ch_dispatch_[r]->SetPartitioned(partitioned);
  ch_response_[r]->SetPartitioned(partitioned);
  ch_cert_request_[r]->SetPartitioned(partitioned);
  ch_commit_notice_[r]->SetPartitioned(partitioned);
  ch_decision_[r]->SetPartitioned(partitioned);
  ch_refresh_[r]->SetPartitioned(partitioned);
  ch_global_commit_[r]->SetPartitioned(partitioned);
  ch_credit_[r]->SetPartitioned(partitioned);
}

void ReplicatedSystem::PartitionReplica(ReplicaId replica) {
  SCREP_CHECK_MSG(sharded_certifier_ == nullptr,
                  "partition faults unsupported with partitioned "
                  "certification");
  Proxy* proxy = replicas_[static_cast<size_t>(replica)]->proxy();
  SCREP_CHECK_MSG(!proxy->down(), "cannot partition a crashed replica");
  SCREP_CHECK_MSG(!IsReplicaPartitioned(replica),
                  "replica already partitioned");
  partitioned_[static_cast<size_t>(replica)] = true;
  EmitFaultEvent(obs::EventKind::kCrash, "partition", replica);
  SCREP_LOG(kWarn) << "[system] network partition of replica " << replica;
  SetReplicaLinksPartitioned(replica, true);
  // The replica itself keeps running, but the rest of the cluster hears
  // silence: one heartbeat round trip later the LB fails outstanding
  // transactions over and the certifier stops fanning refreshes to it.
  rt_->Schedule(config_.network.lb_replica.RoundTrip(), [this, replica]() {
    if (!IsReplicaPartitioned(replica)) return;  // healed before detection
    certifier_->MarkReplicaDown(replica);
    load_balancer_->MarkReplicaDown(replica);
  });
}

void ReplicatedSystem::HealReplicaPartition(ReplicaId replica) {
  SCREP_CHECK_MSG(IsReplicaPartitioned(replica), "replica is not partitioned");
  Proxy* proxy = replicas_[static_cast<size_t>(replica)]->proxy();
  partitioned_[static_cast<size_t>(replica)] = false;
  EmitFaultEvent(obs::EventKind::kRecover, "partition", replica);
  SCREP_LOG(kInfo) << "[system] partition of replica " << replica
                   << " heals at V_local=" << proxy->v_local()
                   << " (certifier at " << certifier_->CommitVersion() << ")";
  SetReplicaLinksPartitioned(replica, false);
  // Sends dropped at the cut (and retransmissions that gave up) left
  // sequence gaps on the refresh channel; the catch-up stream below
  // re-delivers that range, so the channel restarts clean.
  ch_refresh_[static_cast<size_t>(replica)]->Reset();
  certifier_->MarkReplicaUp(replica);
  const DbVersion from = proxy->v_local();
  rt_->Schedule(config_.network.replica_certifier.RoundTrip(),
                 [this, replica, from]() {
    Proxy* p = replicas_[static_cast<size_t>(replica)]->proxy();
    if (p->down() || IsReplicaPartitioned(replica)) return;  // cut again
    const DbVersion target = certifier_->CommitVersion();
    const Status st = certifier_->FetchSince(
        from, [p](const WriteSet& ws) { p->OnRefresh(ws); });
    SCREP_CHECK_MSG(st.ok(), "heal catch-up failed: " << st.ToString());
    // Transactions stuck awaiting decisions re-certify (idempotent at
    // the certifier — already-decided ones get their original verdict).
    p->ResubmitPendingCertifications();
    p->CallWhenVersionReached(target, [this, replica]() {
      load_balancer_->MarkReplicaUp(replica);
    });
  });
}

void ReplicatedSystem::ScheduleGc() {
  rt_->Schedule(config_.gc_interval, [this]() {
    if (gc_stopped_) return;
    for (auto& replica : replicas_) {
      if (replica->proxy()->down()) continue;
      const DbVersion horizon = replica->proxy()->OldestActiveSnapshot();
      replica->db()->TruncateVersions(horizon);
    }
    ScheduleGc();
  });
}

void ReplicatedSystem::Submit(TxnRequest request) {
  request.submit_time = rt_->Now();
  ch_client_lb_->Send(request);
}

void ReplicatedSystem::RecordHistory(const TxnResponse& response,
                                     TimePoint ack_time) {
  obs::EventLog* event_log = obs_->event_log();
  if (history_ == nullptr && !event_log->enabled()) return;
  TxnRecord record;
  record.id = response.txn_id;
  record.session = response.session;
  record.replica = response.replica;
  record.submit_time = response.submit_time;
  record.start_time = response.start_time;
  record.ack_time = ack_time;
  record.snapshot = response.snapshot;
  record.commit_version = response.commit_version;
  record.committed = response.outcome == TxnOutcome::kCommitted;
  record.read_only = response.read_only;
  if (response.type != kUnknownTxnType) {
    const sql::PreparedTransaction& prepared = registry_.Get(response.type);
    for (const auto& stmt : prepared.statements) {
      if (std::find(record.table_set.begin(), record.table_set.end(),
                    stmt->table_id()) == record.table_set.end()) {
        record.table_set.push_back(stmt->table_id());
      }
    }
  }
  for (const auto& [table, version] : response.written_table_versions) {
    (void)version;
    record.tables_written.push_back(table);
  }
  record.keys_written = response.keys_written;
  if (event_log->enabled()) {
    obs::Event e;
    e.kind = obs::EventKind::kTxnFinished;
    e.at = ack_time;
    e.txn = record.id;
    e.session = record.session;
    e.replica = record.replica;
    e.snapshot = record.snapshot;
    e.commit_version = record.commit_version;
    e.committed = record.committed;
    e.read_only = record.read_only;
    e.submit_time = record.submit_time;
    e.start_time = record.start_time;
    e.table_set = record.table_set;
    e.tables_written = record.tables_written;
    e.keys_written = record.keys_written;
    // Sharded coordinates (empty at K = 1 — the JSONL stays identical).
    e.shard_versions = response.shard_versions;
    e.shard_snapshots = response.shard_snapshots;
    event_log->Append(std::move(e));
  }
  if (history_ != nullptr) history_->Add(std::move(record));
}

}  // namespace screp
