#include "replication/system.h"

#include <utility>

#include "common/logging.h"

namespace screp {

ReplicatedSystem::ReplicatedSystem(Simulator* sim, SystemConfig config)
    : sim_(sim), config_(std::move(config)) {}

Result<std::unique_ptr<ReplicatedSystem>> ReplicatedSystem::Create(
    Simulator* sim, const SystemConfig& config,
    const SchemaBuilder& schema_builder, const TxnDefiner& txn_definer) {
  if (config.replica_count < 1) {
    return Status::InvalidArgument("need at least one replica");
  }
  auto system = std::unique_ptr<ReplicatedSystem>(
      new ReplicatedSystem(sim, config));
  const bool eager = config.level == ConsistencyLevel::kEager;

  system->obs_ = std::make_unique<obs::Observability>(sim, config.obs);
  obs::Tracer* tracer = system->obs_->tracer();
  tracer->SetProcessName(obs::kLbPid, "load-balancer");
  tracer->SetProcessName(obs::kCertifierPid, "certifier");
  for (ReplicaId r = 0; r < config.replica_count; ++r) {
    tracer->SetProcessName(obs::kReplicaPidBase + r,
                           "replica-" + std::to_string(r));
  }

  // Replicas first: all populated identically and deterministically.
  for (ReplicaId r = 0; r < config.replica_count; ++r) {
    ProxyConfig proxy_config = config.proxy;
    proxy_config.seed = config.seed;
    proxy_config.attach_read_sets =
        config.certifier.mode == CertificationMode::kSerializable;
    auto replica = std::make_unique<Replica>(
        sim, r, &system->registry_, proxy_config, eager);
    SCREP_RETURN_NOT_OK(schema_builder(replica->db()));
    system->replicas_.push_back(std::move(replica));
  }

  // Prepare the workload's transactions against replica 0's catalog; the
  // registry is shared, and table ids match across replicas because the
  // schema builder runs identically on each.
  Database* db0 = system->replicas_[0]->db();
  SCREP_RETURN_NOT_OK(txn_definer(*db0, &system->registry_));

  // Persist the table-set catalog into every replica (§IV-B: "storing the
  // transaction table-set information in the database") and load it back
  // for the load balancer, resolved to table ids.
  for (auto& replica : system->replicas_) {
    SCREP_RETURN_NOT_OK(system->registry_.PersistCatalog(replica->db()));
  }
  SCREP_ASSIGN_OR_RETURN(auto name_sets,
                         sql::TransactionRegistry::LoadCatalog(*db0));
  std::unordered_map<TxnTypeId, std::vector<TableId>> id_sets;
  for (const auto& [type, names] : name_sets) {
    std::vector<TableId> ids;
    for (const std::string& name : names) {
      SCREP_ASSIGN_OR_RETURN(TableId id, db0->FindTable(name));
      ids.push_back(id);
    }
    id_sets[type] = std::move(ids);
  }

  system->certifier_ = std::make_unique<Certifier>(
      sim, config.certifier, config.replica_count, eager);
  if (config.standby_certifier) {
    if (eager) {
      return Status::NotSupported(
          "standby certifier with the eager configuration");
    }
    system->standby_certifier_ = std::make_unique<Certifier>(
        sim, config.certifier, config.replica_count, /*eager=*/false);
    system->standby_certifier_->SetMuted(true);
    // Muted channels still need non-null callbacks.
    system->standby_certifier_->SetDecisionCallback(
        [](ReplicaId, const CertDecision&) {});
    system->standby_certifier_->SetRefreshCallback(
        [](ReplicaId, const WriteSet&) {});
    system->standby_certifier_->SetGlobalCommitCallback(
        [](ReplicaId, TxnId) {});
  }
  system->table_sets_ = std::move(id_sets);
  system->load_balancer_ = std::make_unique<LoadBalancer>(
      sim, config.level, db0->TableCount(), config.replica_count,
      config.routing, config.staleness_bound);
  system->load_balancer_->SetTableSets(system->table_sets_);

  system->Wire();
  system->obs_->ConfigureAuditor(
      ProvidesStrongConsistency(config.level),
      config.level != ConsistencyLevel::kBoundedStaleness);
  system->RegisterGauges();
  system->obs_->StartSampling();
  if (config.gc_interval > 0) system->ScheduleGc();
  return system;
}

void ReplicatedSystem::RegisterGauges() {
  obs::MetricsRegistry* registry = obs_->registry();
  // All callbacks read through `this` so certifier/load-balancer failovers
  // transparently switch the gauges to the promoted instance.
  registry->RegisterCallbackGauge("certifier.queue_depth", [this]() {
    return static_cast<double>(certifier_->cpu()->QueueLength());
  });
  registry->RegisterCallbackGauge("certifier.force_pending", [this]() {
    return static_cast<double>(certifier_->force_batch_pending());
  });
  registry->RegisterCallbackGauge("certifier.disk_util", [this]() {
    return certifier_->disk()->Utilization();
  });
  registry->RegisterCallbackGauge("lb.outstanding", [this]() {
    int total = 0;
    for (ReplicaId r = 0; r < config_.replica_count; ++r) {
      total += load_balancer_->ActiveAt(r);
    }
    return static_cast<double>(total);
  });
  for (ReplicaId r = 0; r < config_.replica_count; ++r) {
    const std::string prefix = "replica" + std::to_string(r) + ".";
    Proxy* proxy = replicas_[static_cast<size_t>(r)]->proxy();
    registry->RegisterCallbackGauge(prefix + "version_lag", [this, proxy]() {
      return static_cast<double>(certifier_->CommitVersion() -
                                 proxy->v_local());
    });
    registry->RegisterCallbackGauge(prefix + "refresh_queue", [proxy]() {
      return static_cast<double>(proxy->pending_writesets());
    });
    registry->RegisterCallbackGauge(prefix + "inflight", [proxy]() {
      return static_cast<double>(proxy->active_transactions());
    });
    registry->RegisterCallbackGauge(prefix + "cpu_queue", [proxy]() {
      return static_cast<double>(proxy->cpu()->QueueLength());
    });
    registry->RegisterCallbackGauge(prefix + "cpu_util", [proxy]() {
      return proxy->cpu()->Utilization();
    });
    registry->RegisterCallbackGauge(prefix + "apply_lanes_busy", [proxy]() {
      return static_cast<double>(proxy->apply_lanes()->Busy());
    });
    registry->RegisterCallbackGauge(prefix + "publish_backlog", [proxy]() {
      return static_cast<double>(proxy->publish_backlog());
    });
  }
}

void ReplicatedSystem::Wire() {
  const NetworkConfig& net = config_.network;

  WireLoadBalancer();

  // Replica proxy -> load balancer (responses).
  for (auto& replica : replicas_) {
    Proxy* proxy = replica->proxy();
    proxy->SetWaitCause(load_balancer_->policy().wait_cause());
    proxy->SetObservability(obs_.get());
    proxy->SetResponseCallback([this, net](const TxnResponse& response) {
      sim_->Schedule(net.lb_replica, [this, response]() {
        load_balancer_->OnProxyResponse(response);
      });
    });

    // Replica proxy -> certifier (writesets + eager commit reports).
    proxy->SetCertRequestCallback([this, net](const WriteSet& ws) {
      sim_->Schedule(net.replica_certifier, [this, ws]() {
        certifier_->SubmitCertification(ws);
      });
    });
    proxy->SetReplicaCommittedCallback([this, net](TxnId txn) {
      sim_->Schedule(net.replica_certifier, [this, txn]() {
        certifier_->NotifyReplicaCommitted(txn);
      });
    });
  }

  WireCertifier();
}

void ReplicatedSystem::WireLoadBalancer() {
  const NetworkConfig& net = config_.network;
  load_balancer_->SetObservability(obs_.get());
  // Load balancer -> replica proxy (request dispatch).
  load_balancer_->SetDispatchCallback(
      [this, net](ReplicaId replica, const TxnRequest& request,
                  DbVersion required) {
        sim_->Schedule(net.lb_replica, [this, replica, request, required]() {
          replicas_[static_cast<size_t>(replica)]->proxy()->OnTxnRequest(
              request, required);
        });
      });
  // Load balancer -> client (acknowledgments).
  load_balancer_->SetClientResponseCallback(
      [this, net](const TxnResponse& response) {
        sim_->Schedule(net.client_lb, [this, response]() {
          RecordHistory(response, sim_->Now());
          if (client_cb_) client_cb_(response);
        });
      });
}

void ReplicatedSystem::EmitFaultEvent(obs::EventKind kind,
                                      const char* component,
                                      ReplicaId replica) {
  obs::EventLog* log = obs_->event_log();
  if (!log->enabled()) return;
  obs::Event e;
  e.kind = kind;
  e.at = sim_->Now();
  e.replica = replica;
  e.detail = component;
  log->Append(std::move(e));
}

void ReplicatedSystem::CrashLoadBalancer() {
  ++lb_failovers_;
  EmitFaultEvent(obs::EventKind::kFailover, "lb", kNoReplica);
  SCREP_LOG(kWarn) << "[system] load balancer crash (failover #"
                   << lb_failovers_ << "): promoting a standby with "
                      "conservative floor "
                   << certifier_->CommitVersion();
  // The standby holds no soft state: it learns the replica set and the
  // table-set dictionary from configuration/catalog, re-initializes its
  // version trackers conservatively from the certifier, and re-marks
  // crashed replicas (hard state it can re-probe).
  auto standby = std::make_unique<LoadBalancer>(
      sim_, config_.level, replicas_[0]->db()->TableCount(),
      config_.replica_count, config_.routing, config_.staleness_bound);
  standby->SetTableSets(table_sets_);
  standby->PromoteFrom(certifier_->CommitVersion());
  for (ReplicaId r = 0; r < config_.replica_count; ++r) {
    if (replicas_[static_cast<size_t>(r)]->proxy()->down()) {
      standby->MarkReplicaDown(r);
    }
  }
  load_balancer_ = std::move(standby);
  WireLoadBalancer();
}

void ReplicatedSystem::WireCertifier() {
  const NetworkConfig& net = config_.network;
  // Only the active certifier reports: a standby processes the identical
  // stream and would double-count. On promotion the same counter names
  // continue their predecessor's totals.
  certifier_->SetObservability(obs_.get());
  // Certifier -> replicas (decisions, refresh fan-out, global commits).
  certifier_->SetDecisionCallback(
      [this, net](ReplicaId origin, const CertDecision& decision) {
        sim_->Schedule(net.replica_certifier, [this, origin, decision]() {
          replicas_[static_cast<size_t>(origin)]->proxy()->OnCertDecision(
              decision);
        });
      });
  certifier_->SetRefreshCallback(
      [this, net](ReplicaId target, const WriteSet& ws) {
        sim_->Schedule(net.replica_certifier, [this, target, ws]() {
          replicas_[static_cast<size_t>(target)]->proxy()->OnRefresh(ws);
        });
      });
  certifier_->SetGlobalCommitCallback([this, net](ReplicaId origin,
                                                  TxnId txn) {
    sim_->Schedule(net.replica_certifier, [this, origin, txn]() {
      replicas_[static_cast<size_t>(origin)]->proxy()->OnGlobalCommit(txn);
    });
  });
  // Primary -> standby request stream (state-machine replication). A
  // forward still in flight when the standby is promoted lands on the
  // promoted certifier instead, where idempotent certification absorbs
  // it.
  if (standby_certifier_ != nullptr) {
    certifier_->SetForwardCallback([this](const WriteSet& ws) {
      sim_->Schedule(config_.network.replica_certifier, [this, ws]() {
        Certifier* target = standby_certifier_ != nullptr
                                ? standby_certifier_.get()
                                : certifier_.get();
        target->SubmitCertification(ws);
      });
    });
  } else {
    certifier_->SetForwardCallback(nullptr);
  }
}

void ReplicatedSystem::CrashCertifier() {
  SCREP_CHECK_MSG(standby_certifier_ != nullptr,
                  "no standby certifier configured");
  SCREP_CHECK_MSG(!certifier_failed_over_, "certifier already failed over");
  certifier_failed_over_ = true;
  EmitFaultEvent(obs::EventKind::kFailover, "certifier", kNoReplica);
  SCREP_LOG(kWarn) << "[system] certifier crash: promoting the standby at "
                      "commit version "
                   << standby_certifier_->CommitVersion();
  // The primary is gone — muted, but kept allocated so simulated events
  // it still owns (disk completions, queued certifications) fire into
  // silence instead of freed memory. Its pending certifications forward
  // to the promoted certifier through the forward channel.
  dead_certifier_ = std::move(certifier_);
  dead_certifier_->SetMuted(true);
  dead_certifier_->SetObservability(nullptr);
  // The standby (identical deterministic state) takes over and starts
  // speaking on the real channels.
  certifier_ = std::move(standby_certifier_);
  certifier_->SetMuted(false);
  WireCertifier();
  // Replicas may have missed refreshes announced by the dead primary and
  // decisions for in-flight transactions: catch up and resubmit, one
  // failover round trip later.
  for (ReplicaId r = 0; r < static_cast<ReplicaId>(replicas_.size()); ++r) {
    Proxy* proxy = replicas_[static_cast<size_t>(r)]->proxy();
    if (proxy->down()) continue;
    sim_->Schedule(2 * config_.network.replica_certifier, [this, proxy]() {
      if (proxy->down()) return;
      const Status st = certifier_->FetchSince(
          proxy->v_local(), [proxy](const WriteSet& ws) {
            proxy->OnRefresh(ws);
          });
      SCREP_CHECK_MSG(st.ok(), "failover catch-up failed: " << st.ToString());
      proxy->ResubmitPendingCertifications();
    });
  }
}

void ReplicatedSystem::CrashReplica(ReplicaId replica) {
  Proxy* proxy = replicas_[static_cast<size_t>(replica)]->proxy();
  SCREP_CHECK_MSG(!proxy->down(), "replica already down");
  SCREP_LOG(kWarn) << "[system] crash of replica " << replica;
  EmitFaultEvent(obs::EventKind::kCrash, "replica", replica);
  proxy->Crash();
  certifier_->MarkReplicaDown(replica);
  // The load balancer notices the failure and fails outstanding
  // transactions over to their clients (responses travel with latency).
  load_balancer_->MarkReplicaDown(replica);
}

void ReplicatedSystem::RecoverReplica(ReplicaId replica) {
  Proxy* proxy = replicas_[static_cast<size_t>(replica)]->proxy();
  SCREP_CHECK_MSG(proxy->down(), "replica is not down");
  EmitFaultEvent(obs::EventKind::kRecover, "replica", replica);
  SCREP_LOG(kInfo) << "[system] recovery of replica " << replica
                   << " from V_local=" << proxy->v_local()
                   << " (certifier at " << certifier_->CommitVersion() << ")";
  proxy->Restart();
  // Resume the refresh flow first so nothing is missed between the catch-
  // up snapshot and new commits, then stream the missed writesets from
  // the certifier's durable log (one catch-up round trip).
  certifier_->MarkReplicaUp(replica);
  const DbVersion from = proxy->v_local();
  sim_->Schedule(2 * config_.network.replica_certifier, [this, replica,
                                                         from]() {
    Proxy* p = replicas_[static_cast<size_t>(replica)]->proxy();
    if (p->down()) return;  // crashed again before catch-up started
    const DbVersion target = certifier_->CommitVersion();
    const Status st = certifier_->FetchSince(
        from, [p](const WriteSet& ws) { p->OnRefresh(ws); });
    SCREP_CHECK_MSG(st.ok(), "catch-up fetch failed: " << st.ToString());
    // The replica rejoins the routing rotation only once it is current:
    // under the eager scheme nothing else would stop a freshly recovered
    // replica from serving stale snapshots.
    p->CallWhenVersionReached(target, [this, replica]() {
      load_balancer_->MarkReplicaUp(replica);
    });
  });
}

bool ReplicatedSystem::IsReplicaDown(ReplicaId replica) const {
  return replicas_[static_cast<size_t>(replica)]->proxy()->down();
}

void ReplicatedSystem::ScheduleGc() {
  sim_->Schedule(config_.gc_interval, [this]() {
    if (gc_stopped_) return;
    for (auto& replica : replicas_) {
      if (replica->proxy()->down()) continue;
      const DbVersion horizon = replica->proxy()->OldestActiveSnapshot();
      replica->db()->TruncateVersions(horizon);
    }
    ScheduleGc();
  });
}

void ReplicatedSystem::Submit(TxnRequest request) {
  request.submit_time = sim_->Now();
  sim_->Schedule(config_.network.client_lb,
                 [this, request = std::move(request)]() {
                   load_balancer_->OnClientRequest(request);
                 });
}

void ReplicatedSystem::RecordHistory(const TxnResponse& response,
                                     SimTime ack_time) {
  obs::EventLog* event_log = obs_->event_log();
  if (history_ == nullptr && !event_log->enabled()) return;
  TxnRecord record;
  record.id = response.txn_id;
  record.session = response.session;
  record.replica = response.replica;
  record.submit_time = response.submit_time;
  record.start_time = response.start_time;
  record.ack_time = ack_time;
  record.snapshot = response.snapshot;
  record.commit_version = response.commit_version;
  record.committed = response.outcome == TxnOutcome::kCommitted;
  record.read_only = response.read_only;
  if (response.type != kUnknownTxnType) {
    const sql::PreparedTransaction& prepared = registry_.Get(response.type);
    for (const auto& stmt : prepared.statements) {
      if (std::find(record.table_set.begin(), record.table_set.end(),
                    stmt->table_id()) == record.table_set.end()) {
        record.table_set.push_back(stmt->table_id());
      }
    }
  }
  for (const auto& [table, version] : response.written_table_versions) {
    (void)version;
    record.tables_written.push_back(table);
  }
  record.keys_written = response.keys_written;
  if (event_log->enabled()) {
    obs::Event e;
    e.kind = obs::EventKind::kTxnFinished;
    e.at = ack_time;
    e.txn = record.id;
    e.session = record.session;
    e.replica = record.replica;
    e.snapshot = record.snapshot;
    e.commit_version = record.commit_version;
    e.committed = record.committed;
    e.read_only = record.read_only;
    e.submit_time = record.submit_time;
    e.start_time = record.start_time;
    e.table_set = record.table_set;
    e.tables_written = record.tables_written;
    e.keys_written = record.keys_written;
    event_log->Append(std::move(e));
  }
  if (history_ != nullptr) history_->Add(std::move(record));
}

}  // namespace screp
