#include "replication/sharded_certifier.h"

#include <algorithm>
#include <cstddef>
#include <string>
#include <utility>

#include "common/logging.h"

namespace screp {

ShardedCertifier::ShardedCertifier(runtime::Runtime* rt,
                                   CertifierConfig config, ShardMap map,
                                   int replica_count)
    : rt_(rt),
      config_(config),
      map_(std::move(map)),
      replica_count_(replica_count) {
  SCREP_CHECK_MSG(map_.shard_count() >= 1, "need at least one lane");
  const bool serializable = config_.mode == CertificationMode::kSerializable;
  lanes_.reserve(static_cast<size_t>(map_.shard_count()));
  for (int s = 0; s < map_.shard_count(); ++s) {
    lanes_.push_back(std::make_unique<Lane>(
        rt, "certifier-lane" + std::to_string(s), serializable));
  }
  hosts_.assign(static_cast<size_t>(replica_count),
                std::vector<bool>(static_cast<size_t>(map_.shard_count()),
                                  true));
  credits_.assign(
      static_cast<size_t>(map_.shard_count()),
      std::vector<int64_t>(static_cast<size_t>(replica_count),
                           static_cast<int64_t>(config_.refresh_credit_window)));
  deferred_.assign(static_cast<size_t>(map_.shard_count()),
                   std::vector<std::deque<WriteSetRef>>(
                       static_cast<size_t>(replica_count)));
}

void ShardedCertifier::SetHostedShards(
    const std::vector<std::vector<ShardId>>& hosted) {
  if (hosted.empty()) return;  // full replication: everyone hosts everything
  SCREP_CHECK_MSG(hosted.size() == static_cast<size_t>(replica_count_),
                  "hosted-shard sets must cover every replica");
  for (ReplicaId r = 0; r < replica_count_; ++r) {
    const auto& set = hosted[static_cast<size_t>(r)];
    if (set.empty()) continue;  // this replica hosts everything
    auto& row = hosts_[static_cast<size_t>(r)];
    std::fill(row.begin(), row.end(), false);
    for (ShardId s : set) {
      SCREP_CHECK_MSG(s >= 0 && s < map_.shard_count(),
                      "hosted shard " << s << " out of range");
      row[static_cast<size_t>(s)] = true;
    }
  }
}

void ShardedCertifier::SetObservability(obs::Observability* obs) {
  if (obs == nullptr) {
    event_log_ = nullptr;
    ctr_certified_ = nullptr;
    ctr_aborts_ww_ = nullptr;
    ctr_aborts_rw_ = nullptr;
    ctr_aborts_window_ = nullptr;
    ctr_shed_ = nullptr;
    ctr_sequenced_ = nullptr;
    return;
  }
  event_log_ = obs->event_log();
  obs::MetricsRegistry* registry = obs->registry();
  ctr_certified_ = registry->GetCounter("certifier.certified");
  ctr_aborts_ww_ = registry->GetCounter("certifier.aborts.ww");
  ctr_aborts_rw_ = registry->GetCounter("certifier.aborts.rw");
  ctr_aborts_window_ = registry->GetCounter("certifier.aborts.window");
  ctr_shed_ = registry->GetCounter("certifier.shed");
  ctr_sequenced_ = registry->GetCounter("certifier.sequenced");
}

size_t ShardedCertifier::conflict_index_size() const {
  size_t total = 0;
  for (const auto& lane : lanes_) total += lane->index.size();
  return total;
}

int64_t ShardedCertifier::refresh_credits(ShardId shard,
                                          ReplicaId replica) const {
  return credits_[static_cast<size_t>(shard)][static_cast<size_t>(replica)];
}

size_t ShardedCertifier::deferred_refresh_total() const {
  size_t total = 0;
  for (const auto& per_shard : deferred_) {
    for (const auto& q : per_shard) total += q.size();
  }
  return total;
}

void ShardedCertifier::SubmitCertification(WriteSet ws) {
  SCREP_CHECK_MSG(!ws.empty(), "read-only writesets never reach the certifier");
  SCREP_CHECK(ws.origin != kNoReplica);
  const TxnId txn = ws.txn_id;
  // Idempotence: a re-submitted decided transaction gets its original
  // decision back after one lane's CPU service (mirroring the base
  // certifier, which replays from decided_ after intake service).  The
  // decision is captured by value: retirement between submission and
  // service cannot invalidate the replay.
  if (auto it = decided_.find(txn); it != decided_.end()) {
    const ReplicaId origin = ws.origin;
    const ShardId lane = map_.ShardsOf(ws).front();
    lanes_[static_cast<size_t>(lane)]->cpu.Submit(
        config_.certify_cpu_time, [this, origin, decision = it->second]() {
          decision_cb_(origin, decision);
        });
    return;
  }
  // Duplicate of an in-flight submission: drop it — the pending decision
  // will be announced to the origin exactly once.
  if (pending_.find(txn) != pending_.end()) return;
  std::vector<ShardId> shards = map_.ShardsOf(ws);
  SCREP_CHECK_MSG(!shards.empty(), "writeset touches no shard");
  // Intake bound, per lane: refuse on arrival when ANY touched lane's
  // vote queue is at the bound — a cross-shard transaction admitted into
  // only some of its lanes would stall every queue behind its missing
  // votes.  A shed submission never enters any queue.
  if (config_.max_intake > 0) {
    for (ShardId s : shards) {
      if (lanes_[static_cast<size_t>(s)]->cpu.QueueLength() >=
          config_.max_intake) {
        ShedSubmission(ws);
        return;
      }
    }
  }
  PendingTxn pending;
  pending.ws = std::move(ws);
  pending.shards = std::move(shards);
  pending.votes_outstanding = static_cast<int>(pending.shards.size());
  PendingTxn& inserted = pending_[txn] = std::move(pending);
  // `inserted.shards`, not a reference into the local: the local's vector
  // was just moved away.
  const std::vector<ShardId> touched = inserted.shards;
  for (ShardId s : touched) {
    lanes_[static_cast<size_t>(s)]->order.push_back(txn);
  }
  // One certify-CPU service per touched lane: the per-shard conflict
  // checks proceed in parallel.
  for (ShardId s : touched) {
    lanes_[static_cast<size_t>(s)]->cpu.Submit(
        config_.certify_cpu_time, [this, txn]() { OnVote(txn); });
  }
}

void ShardedCertifier::ShedSubmission(const WriteSet& ws) {
  ++shed_;
  if (ctr_shed_ != nullptr) ctr_shed_->Increment();
  if (event_log_ != nullptr && event_log_->enabled()) {
    obs::Event e;
    e.kind = obs::EventKind::kShed;
    e.at = rt_->Now();
    e.txn = ws.txn_id;
    e.replica = ws.origin;
    e.detail = "certifier";
    event_log_->Append(std::move(e));
  }
  // Not recorded in decided_: nothing was certified, and a retry must be
  // certified fresh against its new snapshot.
  CertDecision decision;
  decision.txn_id = ws.txn_id;
  decision.commit = false;
  decision.overloaded = true;
  decision_cb_(ws.origin, decision);
}

void ShardedCertifier::OnVote(TxnId txn) {
  auto it = pending_.find(txn);
  SCREP_CHECK_MSG(it != pending_.end(), "vote for unknown txn " << txn);
  if (--it->second.votes_outstanding > 0) return;
  it->second.ready = true;
  DecideEligible();
}

void ShardedCertifier::DecideEligible() {
  // Decide every transaction that has all its votes and sits at the head
  // of ALL its touched lanes' queues; each decision pops queue heads and
  // may unblock the next, so sweep until a full pass makes no progress.
  bool progress = true;
  while (progress) {
    progress = false;
    for (const auto& lane : lanes_) {
      if (lane->order.empty()) continue;
      const TxnId txn = lane->order.front();
      auto it = pending_.find(txn);
      SCREP_CHECK_MSG(it != pending_.end(), "queued txn " << txn
                                                          << " not pending");
      if (!it->second.ready) continue;
      bool at_all_heads = true;
      for (ShardId s : it->second.shards) {
        const auto& q = lanes_[static_cast<size_t>(s)]->order;
        if (q.empty() || q.front() != txn) {
          at_all_heads = false;
          break;
        }
      }
      if (!at_all_heads) continue;
      PendingTxn pending = std::move(it->second);
      pending_.erase(it);
      for (ShardId s : pending.shards) {
        lanes_[static_cast<size_t>(s)]->order.pop_front();
      }
      Decide(std::move(pending));
      progress = true;
    }
  }
}

void ShardedCertifier::EmitVerdict(const WriteSet& ws, bool commit,
                                   const char* reason,
                                   DbVersion conflict_version,
                                   TxnId conflict_txn) {
  if (event_log_ == nullptr || !event_log_->enabled()) return;
  obs::Event e;
  e.kind = obs::EventKind::kCertVerdict;
  e.at = rt_->Now();
  e.txn = ws.txn_id;
  e.replica = ws.origin;
  e.snapshot = ws.snapshot_version;
  e.committed = commit;
  e.read_only = false;
  e.shard_snapshots = ws.shard_snapshots;
  if (commit) {
    e.commit_version = ws.commit_version;
    e.shard_versions = ws.shard_versions;
  } else {
    e.detail = reason;
    e.conflict_version = conflict_version;
    e.conflict_txn = conflict_txn;
  }
  event_log_->Append(std::move(e));
}

void ShardedCertifier::RecordDecision(const CertDecision& decision) {
  decided_[decision.txn_id] = decision;
  decided_log_.emplace_back(seq_, decision.txn_id);
  // Retire decisions a full conflict window of decide steps old (the
  // sharded analog of the base certifier's commit-version horizon).
  const auto horizon = static_cast<int64_t>(config_.conflict_window);
  while (!decided_log_.empty() && seq_ - decided_log_.front().first > horizon) {
    decided_.erase(decided_log_.front().second);
    decided_log_.pop_front();
  }
}

void ShardedCertifier::Decide(PendingTxn pending) {
  WriteSet& ws = pending.ws;
  const std::vector<ShardId>& shards = pending.shards;
  const bool serializable = config_.mode == CertificationMode::kSerializable;
  const bool cross_shard = shards.size() > 1;
  // Conservative window abort when any touched lane's retained window no
  // longer covers the transaction's snapshot in that shard.
  for (ShardId s : shards) {
    Lane& lane = *lanes_[static_cast<size_t>(s)];
    const DbVersion snapshot = ShardVersionOf(ws.shard_snapshots, s);
    const DbVersion window_start =
        lane.recent.empty() ? 0 : lane.recent.front()->commit_version - 1;
    if (snapshot >= window_start) continue;
    ++window_aborts_;
    ++aborts_;
    if (ctr_aborts_window_ != nullptr) ctr_aborts_window_->Increment();
    SCREP_LOG(kWarn) << "[certifier] conservative window abort of txn "
                     << ws.txn_id << ": shard " << s << " snapshot "
                     << snapshot << " predates the retained window (starts at "
                     << window_start << ")";
    EmitVerdict(ws, /*commit=*/false, "window", kNoVersion, 0);
    ++seq_;
    CertDecision decision{ws.txn_id, /*commit=*/false, kNoVersion};
    RecordDecision(decision);
    decision_cb_(ws.origin, decision);
    return;
  }
  // First-committer-wins across every touched lane.  Each lane reports
  // its newest conflict (against this shard's committed sub-writesets,
  // probed with the full writeset: foreign-shard keys simply never hit).
  // Shard-local versions are incomparable across lanes, so "newest" is
  // resolved by the global decide sequence number recorded with each
  // committed sub-writeset; on a tie (one committed cross-shard
  // transaction hitting through several lanes) the write-write
  // classification wins, matching the oracle's per-writeset check order.
  bool found = false, ww = false;
  int64_t best_seq = -1;
  DbVersion conflict_version = kNoVersion;
  TxnId conflict_txn = 0;
  for (ShardId s : shards) {
    Lane& lane = *lanes_[static_cast<size_t>(s)];
    const DbVersion snapshot = ShardVersionOf(ws.shard_snapshots, s);
    bool lane_found = false, lane_ww = false;
    DbVersion lane_version = kNoVersion;
    TxnId lane_txn = 0;
    if (config_.linear_scan_oracle) {
      for (auto it = lane.recent.rbegin(); it != lane.recent.rend(); ++it) {
        const WriteSet& committed = **it;
        if (committed.commit_version <= snapshot) break;
        const bool hit_ww = ws.ConflictsWith(committed);
        const bool hit_rw = serializable && ws.ReadsConflictWith(committed);
        if (hit_ww || hit_rw) {
          lane_found = true;
          lane_ww = hit_ww;
          lane_version = committed.commit_version;
          lane_txn = committed.txn_id;
          break;
        }
      }
    } else {
      CommittedKeyIndex::Hit write_hit, read_hit;
      const bool has_write =
          lane.index.LatestWriteConflict(ws, snapshot, &write_hit);
      const bool has_read =
          serializable && lane.index.LatestReadConflict(ws, snapshot,
                                                        &read_hit);
      if (has_write || has_read) {
        lane_found = true;
        if (has_write && write_hit.version >= read_hit.version) {
          lane_ww = true;
          lane_version = write_hit.version;
          lane_txn = write_hit.txn;
        } else {
          lane_version = read_hit.version;
          lane_txn = read_hit.txn;
        }
      }
    }
    if (!lane_found) continue;
    const DbVersion front = lane.recent.front()->commit_version;
    const int64_t lane_seq =
        lane.recent_seq[static_cast<size_t>(lane_version - front)];
    if (!found || lane_seq > best_seq || (lane_seq == best_seq && lane_ww)) {
      found = true;
      ww = lane_ww;
      best_seq = lane_seq;
      conflict_version = lane_version;
      conflict_txn = lane_txn;
    }
  }
  if (found) {
    ++aborts_;
    if (!ww) ++rw_aborts_;
    if (!ww) {
      if (ctr_aborts_rw_ != nullptr) ctr_aborts_rw_->Increment();
    } else if (ctr_aborts_ww_ != nullptr) {
      ctr_aborts_ww_->Increment();
    }
    SCREP_LOG(kDebug) << "[certifier] certification abort of txn " << ws.txn_id
                      << " from replica " << ws.origin << ": "
                      << (ww ? "write-write" : "read-write")
                      << " conflict with shard-local version "
                      << conflict_version << " (txn " << conflict_txn << ")";
    EmitVerdict(ws, /*commit=*/false, ww ? "ww" : "rw", conflict_version,
                conflict_txn);
    ++seq_;
    CertDecision decision{ws.txn_id, /*commit=*/false, kNoVersion};
    RecordDecision(decision);
    decision_cb_(ws.origin, decision);
    return;
  }
  // Commit: one decide step assigns the joint commit version — the next
  // version in every touched lane, atomically.  The scalar
  // commit_version mirrors the lowest-numbered touched shard's version
  // for consumers that only track one number.
  ++seq_;
  ws.shard_versions.clear();
  for (ShardId s : shards) {
    Lane& lane = *lanes_[static_cast<size_t>(s)];
    ws.shard_versions.emplace_back(s, ++lane.v_commit);
  }
  ws.commit_version = ws.shard_versions.front().second;
  ++certified_;
  if (cross_shard) {
    ++sequenced_;
    if (ctr_sequenced_ != nullptr) ctr_sequenced_->Increment();
  }
  if (ctr_certified_ != nullptr) ctr_certified_->Increment();
  EmitVerdict(ws, /*commit=*/true, nullptr, kNoVersion, 0);
  CertDecision decision;
  decision.txn_id = ws.txn_id;
  decision.commit = true;
  decision.commit_version = ws.commit_version;
  decision.shard_versions = ws.shard_versions;
  RecordDecision(decision);
  WriteSetRef frozen = std::make_shared<const WriteSet>(std::move(ws));
  // Install the per-shard sub-writesets into their lanes' conflict
  // windows, stamped with the shard-local version and the decide
  // sequence number, and enqueue one WAL force per touched lane.
  force_remaining_[frozen->txn_id] = static_cast<int>(shards.size());
  announcing_[frozen->txn_id] = frozen;
  for (const auto& [s, version] : frozen->shard_versions) {
    Lane& lane = *lanes_[static_cast<size_t>(s)];
    WriteSet sub = map_.SubWriteSet(*frozen, s);
    sub.snapshot_version = ShardVersionOf(frozen->shard_snapshots, s);
    sub.commit_version = version;
    WriteSetRef frozen_sub = std::make_shared<const WriteSet>(std::move(sub));
    lane.recent.push_back(frozen_sub);
    lane.recent_seq.push_back(seq_);
    if (!config_.linear_scan_oracle) lane.index.Insert(*frozen_sub);
    while (lane.recent.size() > config_.conflict_window) {
      if (!config_.linear_scan_oracle) lane.index.Erase(*lane.recent.front());
      lane.recent.pop_front();
      lane.recent_seq.pop_front();
    }
    lane.force_batch.push_back(std::move(frozen_sub));
    if (!lane.force_in_flight) {
      lane.force_in_flight = true;
      StartForce(s);
    }
  }
}

void ShardedCertifier::StartForce(ShardId shard) {
  Lane& lane = *lanes_[static_cast<size_t>(shard)];
  std::vector<WriteSetRef> batch;
  if (config_.max_force_batch > 0 &&
      lane.force_batch.size() > config_.max_force_batch) {
    const auto split = lane.force_batch.begin() +
                       static_cast<std::ptrdiff_t>(config_.max_force_batch);
    batch.assign(lane.force_batch.begin(), split);
    lane.force_batch.erase(lane.force_batch.begin(), split);
  } else {
    batch.swap(lane.force_batch);
  }
  lane.disk.Submit(config_.log_force_time,
                   [this, shard, batch = std::move(batch)]() {
                     Lane& l = *lanes_[static_cast<size_t>(shard)];
                     for (const WriteSetRef& sub : batch) {
                       l.wal.Append(*sub, /*force=*/true);
                       // A cross-shard commit announces only once its
                       // force completed in EVERY touched lane — joint
                       // durability before any replica hears of it.
                       auto it = force_remaining_.find(sub->txn_id);
                       SCREP_CHECK(it != force_remaining_.end());
                       if (--it->second > 0) continue;
                       force_remaining_.erase(it);
                       auto full = announcing_.find(sub->txn_id);
                       SCREP_CHECK(full != announcing_.end());
                       WriteSetRef ws = std::move(full->second);
                       announcing_.erase(full);
                       Announce(ws);
                     }
                     if (!l.force_batch.empty()) {
                       StartForce(shard);
                     } else {
                       l.force_in_flight = false;
                     }
                   });
}

void ShardedCertifier::Announce(const WriteSetRef& ws) {
  CertDecision decision;
  decision.txn_id = ws->txn_id;
  decision.commit = true;
  decision.commit_version = ws->commit_version;
  decision.shard_versions = ws->shard_versions;
  decision_cb_(ws->origin, decision);
  // Refresh fan-out, filtered to hosting replicas: each target gets the
  // writeset exactly once, on the lowest-numbered touched shard it
  // hosts (its proxy ingests it into every touched hosted stream).
  for (ReplicaId r = 0; r < replica_count_; ++r) {
    if (r == ws->origin) continue;
    for (const auto& [s, version] : ws->shard_versions) {
      (void)version;
      if (!Hosts(r, s)) continue;
      SendRefresh(s, r, ws);
      break;
    }
  }
}

void ShardedCertifier::SendRefresh(ShardId shard, ReplicaId replica,
                                   const WriteSetRef& ws) {
  if (config_.refresh_credit_window == 0) {
    refresh_cb_(shard, replica, RefreshBatch{{ws}});
    return;
  }
  const auto si = static_cast<size_t>(shard);
  const auto ri = static_cast<size_t>(replica);
  if (!deferred_[si][ri].empty() || credits_[si][ri] <= 0) {
    deferred_[si][ri].push_back(ws);
    return;
  }
  --credits_[si][ri];
  refresh_cb_(shard, replica, RefreshBatch{{ws}});
}

void ShardedCertifier::OnCreditReturned(ShardId shard, ReplicaId replica,
                                        int credits) {
  if (config_.refresh_credit_window == 0) return;
  SCREP_CHECK(shard >= 0 && shard < map_.shard_count());
  SCREP_CHECK(replica >= 0 && replica < replica_count_);
  const auto si = static_cast<size_t>(shard);
  const auto ri = static_cast<size_t>(replica);
  credits_[si][ri] =
      std::min(credits_[si][ri] + credits,
               static_cast<int64_t>(config_.refresh_credit_window));
  auto& deferred = deferred_[si][ri];
  if (deferred.empty()) return;
  RefreshBatch refresh;
  while (!deferred.empty() && credits_[si][ri] > 0) {
    refresh.writesets.push_back(std::move(deferred.front()));
    deferred.pop_front();
    --credits_[si][ri];
  }
  if (!refresh.writesets.empty()) refresh_cb_(shard, replica, refresh);
}

}  // namespace screp
