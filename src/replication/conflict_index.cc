#include "replication/conflict_index.h"

namespace screp {

void CommittedKeyIndex::Insert(const WriteSet& ws) {
  const Hit hit{ws.commit_version, ws.txn_id};
  for (const WriteOp& op : ws.ops) {
    // Versions are assigned in submission order, so a plain overwrite
    // always leaves the newest version behind.
    latest_[TableKey{op.table, op.key}] = hit;
    if (track_ranges_) by_table_[op.table][op.key] = hit;
  }
}

void CommittedKeyIndex::Erase(const WriteSet& ws) {
  for (const WriteOp& op : ws.ops) {
    auto it = latest_.find(TableKey{op.table, op.key});
    if (it == latest_.end() || it->second.version != ws.commit_version) {
      continue;  // a later writeset overwrote this key; keep it indexed
    }
    latest_.erase(it);
    if (track_ranges_) {
      auto tit = by_table_.find(op.table);
      if (tit != by_table_.end()) {
        tit->second.erase(op.key);
        if (tit->second.empty()) by_table_.erase(tit);
      }
    }
  }
}

bool CommittedKeyIndex::LatestWriteConflict(const WriteSet& ws,
                                            DbVersion snapshot,
                                            Hit* hit) const {
  Hit best;
  for (const WriteOp& op : ws.ops) {
    auto it = latest_.find(TableKey{op.table, op.key});
    if (it == latest_.end()) continue;
    if (it->second.version > snapshot && it->second.version > best.version) {
      best = it->second;
    }
  }
  if (best.version == kNoVersion) return false;
  *hit = best;
  return true;
}

bool CommittedKeyIndex::LatestReadConflict(const WriteSet& ws,
                                           DbVersion snapshot,
                                           Hit* hit) const {
  Hit best;
  for (const auto& [table, key] : ws.read_keys) {
    auto it = latest_.find(TableKey{table, key});
    if (it == latest_.end()) continue;
    if (it->second.version > snapshot && it->second.version > best.version) {
      best = it->second;
    }
  }
  for (const ReadRange& range : ws.read_ranges) {
    auto tit = by_table_.find(range.table);
    if (tit == by_table_.end()) continue;
    const std::map<int64_t, Hit>& keys = tit->second;
    for (auto it = keys.lower_bound(range.lo);
         it != keys.end() && it->first <= range.hi; ++it) {
      if (it->second.version > snapshot &&
          it->second.version > best.version) {
        best = it->second;
      }
    }
  }
  if (best.version == kNoVersion) return false;
  *hit = best;
  return true;
}

void CommittedKeyIndex::Clear() {
  latest_.clear();
  by_table_.clear();
}

void PendingApplyIndex::Insert(const WriteSet& ws, bool is_local) {
  for (const WriteOp& op : ws.ops) {
    keys_[TableKey{op.table, op.key}][ws.commit_version] =
        Slot{is_local, /*dispatched=*/false};
  }
}

void PendingApplyIndex::MarkDispatched(const WriteSet& ws) {
  for (const WriteOp& op : ws.ops) {
    auto it = keys_.find(TableKey{op.table, op.key});
    if (it == keys_.end()) continue;
    auto vit = it->second.find(ws.commit_version);
    if (vit != it->second.end()) vit->second.dispatched = true;
  }
}

void PendingApplyIndex::Erase(const WriteSet& ws) {
  for (const WriteOp& op : ws.ops) {
    auto it = keys_.find(TableKey{op.table, op.key});
    if (it == keys_.end()) continue;
    it->second.erase(ws.commit_version);
    if (it->second.empty()) keys_.erase(it);
  }
}

bool PendingApplyIndex::ConflictsWithQueuedRefresh(
    const WriteSet& partial) const {
  for (const WriteOp& op : partial.ops) {
    auto it = keys_.find(TableKey{op.table, op.key});
    if (it == keys_.end()) continue;
    for (const auto& [version, slot] : it->second) {
      (void)version;
      if (!slot.is_local && !slot.dispatched) return true;
    }
  }
  return false;
}

bool PendingApplyIndex::BlockedByEarlier(const WriteSet& ws) const {
  for (const WriteOp& op : ws.ops) {
    auto it = keys_.find(TableKey{op.table, op.key});
    if (it == keys_.end()) continue;
    // The version map is ordered: the first entry is the oldest
    // un-published write to this key.
    if (!it->second.empty() &&
        it->second.begin()->first < ws.commit_version) {
      return true;
    }
  }
  return false;
}

}  // namespace screp
