#include "replication/proxy.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace screp {

Proxy::Proxy(runtime::Runtime* rt, ReplicaId id, Database* db,
             const sql::TransactionRegistry* registry, ProxyConfig config,
             bool eager)
    : rt_(rt),
      id_(id),
      db_(db),
      registry_(registry),
      config_(config),
      eager_(eager),
      service_rng_(config.seed * 0x9e3779b97f4a7c15ULL +
                   static_cast<uint64_t>(id) + 1),
      cpu_(rt, "replica-" + std::to_string(id) + "-cpu",
           config.cpu_cores),
      apply_lanes_(rt, "replica-" + std::to_string(id) + "-apply-lanes",
                   config.apply_lanes) {
  SCREP_CHECK(config.apply_lanes >= 1);
}

void Proxy::SetObservability(obs::Observability* obs) {
  if (obs == nullptr) return;
  tracer_ = obs->tracer();
  event_log_ = obs->event_log();
  metrics_ = obs->registry();
  audit_ = obs->audit_enabled();
  const std::string prefix = "replica" + std::to_string(id_) + ".";
  ctr_early_aborts_ = metrics_->GetCounter(prefix + "early_aborts");
  ctr_refresh_applied_ = metrics_->GetCounter(prefix + "refresh_applied");
  ctr_dropped_ = metrics_->GetCounter(prefix + "dropped_while_down");
}

void Proxy::RecordBlockedTime(Duration blocked) {
  if (!audit_ || metrics_ == nullptr) return;
  if (blocked_hist_ == nullptr) {
    blocked_hist_ = metrics_->GetHistogram(
        std::string(obs::kBlockedHistogramPrefix) +
        obs::WaitCauseName(wait_cause_) + "_us");
  }
  blocked_hist_->Add(static_cast<double>(blocked));
}

void Proxy::EmitSpan(const char* name, TxnId txn, TimePoint start,
                     Duration duration, const char* arg_name,
                     int64_t arg_value) {
  if (tracer_ == nullptr) return;
  tracer_->Add({.name = name,
                .category = "proxy",
                .pid = static_cast<int32_t>(obs::kReplicaPidBase + id_),
                .tid = static_cast<int64_t>(txn),
                .start = start,
                .duration = duration,
                .txn = txn,
                .arg_name = arg_name,
                .arg_value = arg_value});
}

void Proxy::NoteDroppedWhileDown(const char* what, TxnId txn) {
  ++dropped_while_down_;
  if (ctr_dropped_ != nullptr) ctr_dropped_->Increment();
  SCREP_LOG(kDebug) << "[replica " << id_ << "] dropped " << what
                    << " for txn " << txn
                    << (down_ ? " while down" : " (lost in a crash)");
}

Duration Proxy::Stochastic(Duration mean_cost) {
  const double spread = config_.service_spread;
  double cost = static_cast<double>(mean_cost) *
                ((1.0 - spread) + spread * service_rng_.NextExponential(1.0));
  if (config_.stall_probability > 0 &&
      service_rng_.NextBool(config_.stall_probability)) {
    cost += service_rng_.NextExponential(
        static_cast<double>(config_.stall_duration));
  }
  return static_cast<Duration>(cost);
}

DbVersion Proxy::OldestActiveSnapshot() const {
  DbVersion oldest = v_local();
  for (const auto& [txn_id, t] : active_) {
    (void)txn_id;
    if (t->txn != nullptr) oldest = std::min(oldest, t->txn->snapshot());
  }
  return oldest;
}

void Proxy::Crash() {
  down_ = true;
  ++epoch_;  // invalidates every in-flight completion callback
  SCREP_LOG(kWarn) << "[replica " << id_ << "] crash: dropping "
                   << active_.size() << " in-flight transaction(s) and "
                   << pending_writesets() << " pending writeset(s); V_local="
                   << v_local();
  active_.clear();
  begin_waiters_.clear();
  version_waiters_.clear();
  pending_.clear();
  // In-flight apply completions bail on the epoch check, so their lanes
  // must be returned here.
  for (size_t i = 0; i < executing_.size(); ++i) apply_lanes_.Release();
  executing_.clear();
  executed_.clear();
  pending_index_.Clear();
  contiguous_ = v_local();
  local_claims_.clear();
}

int Proxy::ResubmitPendingCertifications() {
  int resubmitted = 0;
  for (auto& [txn_id, t] : active_) {
    (void)txn_id;
    if (t->awaiting_decision) {
      cert_request_cb_(t->writeset);
      ++resubmitted;
    }
  }
  return resubmitted;
}

void Proxy::CallWhenVersionReached(DbVersion version,
                                   std::function<void()> fn) {
  if (v_local() >= version) {
    fn();
    return;
  }
  version_waiters_.emplace(version, std::move(fn));
}

void Proxy::Restart() {
  SCREP_CHECK(down_);
  down_ = false;
}

void Proxy::EnableSharding(const ShardMap* map,
                           std::vector<ShardId> hosted) {
  SCREP_CHECK_MSG(!eager_, "eager mode is unsupported with sharding");
  SCREP_CHECK(map != nullptr);
  shard_map_ = map;
  if (hosted.empty()) {
    for (ShardId s = 0; s < map->shard_count(); ++s) hosted.push_back(s);
  }
  std::sort(hosted.begin(), hosted.end());
  hosted.erase(std::unique(hosted.begin(), hosted.end()), hosted.end());
  hosted_shards_ = std::move(hosted);
  stream_index_.assign(static_cast<size_t>(map->shard_count()), -1);
  streams_.assign(hosted_shards_.size(), ShardStream{});
  for (size_t i = 0; i < hosted_shards_.size(); ++i) {
    const ShardId s = hosted_shards_[i];
    SCREP_CHECK_MSG(s >= 0 && s < map->shard_count(),
                    "hosted shard " << s << " out of range");
    stream_index_[static_cast<size_t>(s)] = static_cast<int>(i);
  }
}

DbVersion Proxy::ShardPublished(ShardId shard) const {
  const int idx = stream_index_[static_cast<size_t>(shard)];
  SCREP_CHECK_MSG(idx >= 0, "shard " << shard << " not hosted by replica "
                                     << id_);
  return streams_[static_cast<size_t>(idx)].published;
}

bool Proxy::ShardedRequirementMet(
    const std::vector<std::pair<int32_t, DbVersion>>& required) const {
  for (const auto& [shard, version] : required) {
    SCREP_CHECK_MSG(HostsShard(shard),
                    "routed to replica " << id_ << " which does not host shard "
                                         << shard);
    if (ShardPublished(shard) < version) return false;
  }
  return true;
}

void Proxy::OnTxnRequestSharded(
    const TxnRequest& request,
    const std::vector<std::pair<int32_t, DbVersion>>& shard_required) {
  if (down_) {
    NoteDroppedWhileDown("request", request.txn_id);
    return;
  }
  auto t = std::make_unique<ActiveTxn>();
  t->request = request;
  t->shard_required = shard_required;
  t->prepared = &registry_->Get(request.type);
  t->arrive_time = rt_->Now();
  ActiveTxn* raw = t.get();
  SCREP_CHECK_MSG(active_.emplace(request.txn_id, std::move(t)).second,
                  "duplicate txn id " << request.txn_id);
  if (ShardedRequirementMet(shard_required) ||
      config_.test_skip_version_check) {
    StartExecution(raw);
  } else {
    // Per-shard synchronization start delay: BEGIN waits until every
    // touched hosted shard's refresh stream reaches its required version.
    sharded_begin_waiters_.push_back(request.txn_id);
  }
}

void Proxy::ReleaseShardedBeginWaiters() {
  for (size_t i = 0; i < sharded_begin_waiters_.size();) {
    const TxnId txn = sharded_begin_waiters_[i];
    auto it = active_.find(txn);
    const bool release =
        it == active_.end() ||
        ShardedRequirementMet(it->second->shard_required);
    if (!release) {
      ++i;
      continue;
    }
    sharded_begin_waiters_[i] = sharded_begin_waiters_.back();
    sharded_begin_waiters_.pop_back();
    if (it != active_.end()) StartExecution(it->second.get());
  }
}

void Proxy::OnTxnRequest(const TxnRequest& request,
                         DbVersion required_version) {
  if (down_) {
    NoteDroppedWhileDown("request", request.txn_id);
    return;  // the load balancer reports the failure to the client
  }
  auto t = std::make_unique<ActiveTxn>();
  t->request = request;
  t->required_version = required_version;
  t->prepared = &registry_->Get(request.type);
  t->arrive_time = rt_->Now();
  ActiveTxn* raw = t.get();
  SCREP_CHECK_MSG(active_.emplace(request.txn_id, std::move(t)).second,
                  "duplicate txn id " << request.txn_id);
  if (v_local() >= required_version || config_.test_skip_version_check) {
    StartExecution(raw);
  } else {
    // Synchronization start delay: wait for the refresh stream to bring
    // V_local up to the tagged version (§IV-A/B/C).
    begin_waiters_.emplace(required_version, request.txn_id);
  }
}

void Proxy::ReleaseBeginWaiters() {
  const DbVersion v = v_local();
  while (!begin_waiters_.empty() && begin_waiters_.begin()->first <= v) {
    const TxnId txn_id = begin_waiters_.begin()->second;
    begin_waiters_.erase(begin_waiters_.begin());
    auto it = active_.find(txn_id);
    SCREP_CHECK(it != active_.end());
    StartExecution(it->second.get());
  }
  while (!version_waiters_.empty() &&
         version_waiters_.begin()->first <= v) {
    auto fn = std::move(version_waiters_.begin()->second);
    version_waiters_.erase(version_waiters_.begin());
    fn();
  }
}

void Proxy::StartExecution(ActiveTxn* t) {
  t->exec_start_time = rt_->Now();
  t->stages.version = t->exec_start_time - t->arrive_time;
  EmitSpan("proxy.start_delay", t->request.txn_id, t->arrive_time,
           t->stages.version);
  t->txn = db_->Begin();  // snapshot at current V_local
  if (sharded()) {
    // The transaction's per-shard snapshot coordinates: what each hosted
    // shard's refresh stream had published when BEGIN executed.  Applies
    // advance the local database version and the shard streams in one
    // atomic step, so these coordinates exactly describe the local MVCC
    // snapshot just taken.
    t->shard_snapshots.reserve(hosted_shards_.size());
    for (ShardId s : hosted_shards_) {
      t->shard_snapshots.emplace_back(s, ShardPublished(s));
    }
  }
  if (event_log_ != nullptr && event_log_->enabled()) {
    obs::Event e;
    e.kind = obs::EventKind::kBeginAdmitted;
    e.at = t->exec_start_time;
    e.txn = t->request.txn_id;
    e.session = t->request.session;
    e.replica = id_;
    e.required_version = t->required_version;
    e.satisfied_version = t->txn->snapshot();
    e.wait_cause = wait_cause_;
    e.wait = t->stages.version;
    e.shard_required = t->shard_required;
    e.shard_snapshots = t->shard_snapshots;
    event_log_->Append(std::move(e));
  }
  // Eager pays at the ack instead (see Respond); the lazy schemes' only
  // blocked time is this start delay.
  if (!eager_) RecordBlockedTime(t->stages.version);
  ExecuteNextStatement(t);
}

void Proxy::ExecuteNextStatement(ActiveTxn* t) {
  if (t->aborted_early) {
    Respond(t, TxnOutcome::kEarlyAbort);
    return;
  }
  if (t->next_stmt >= t->prepared->statements.size()) {
    OnStatementsDone(t);
    return;
  }
  const sql::PreparedStatement& stmt =
      *t->prepared->statements[t->next_stmt];
  const std::vector<Value>& params = t->request.params[t->next_stmt];
  ++t->next_stmt;

  // The statement's reads are against the fixed snapshot, so evaluating
  // now and charging service time afterwards is equivalent to evaluating
  // at any point inside the service window.
  Result<sql::ResultSet> rs = sql::Execute(t->txn.get(), stmt, params);
  if (!rs.ok()) {
    SCREP_LOG(kDebug) << "txn " << t->request.txn_id << " statement failed: "
                      << rs.status().ToString();
    Respond(t, TxnOutcome::kExecutionError);
    return;
  }
  t->rows_examined += rs->rows_examined;
  if (t->request.collect_results) t->results.push_back(std::move(rs->rows));

  // Early certification (§IV): an update statement's partial writeset is
  // checked against pending refresh writesets; a conflict aborts the
  // client transaction immediately instead of letting it block the
  // refresh stream inside the DBMS.
  if (stmt.IsUpdate() && config_.early_certification) {
    if (ConflictsWithPendingRefresh(t->txn->PartialWriteSet())) {
      ++early_aborts_;
      if (ctr_early_aborts_ != nullptr) ctr_early_aborts_->Increment();
      SCREP_LOG(kDebug) << "[replica " << id_ << "] early abort of txn "
                        << t->request.txn_id
                        << ": statement writes conflict with a pending "
                           "refresh writeset";
      Respond(t, TxnOutcome::kEarlyAbort);
      return;
    }
  }

  const Duration cpu_cost = Stochastic(
      (stmt.IsUpdate() ? config_.update_stmt_base : config_.read_stmt_base) +
      config_.per_row_cost * rs->rows_examined);
  const TxnId txn_id = t->request.txn_id;
  const int64_t stmt_index = static_cast<int64_t>(t->next_stmt) - 1;
  const TimePoint stmt_start = rt_->Now();
  cpu_.Submit(cpu_cost, [this, txn_id, stmt_index, stmt_start]() {
    auto it = active_.find(txn_id);
    if (it == active_.end()) return;  // aborted meanwhile
    EmitSpan("proxy.stmt", txn_id, stmt_start, rt_->Now() - stmt_start,
             "stmt", stmt_index);
    // Per-statement application round trip before the next statement.
    rt_->Schedule(config_.stmt_round_trip, [this, txn_id]() {
      auto it2 = active_.find(txn_id);
      if (it2 == active_.end()) return;
      ExecuteNextStatement(it2->second.get());
    });
  });
}

void Proxy::OnStatementsDone(ActiveTxn* t) {
  t->queries_end_time = rt_->Now();
  t->stages.queries = t->queries_end_time - t->exec_start_time;
  EmitSpan("proxy.exec", t->request.txn_id, t->exec_start_time,
           t->stages.queries);
  if (t->txn->read_only()) {
    // Read-only fast path: commit locally, acknowledge immediately (§IV).
    const TxnId txn_id = t->request.txn_id;
    cpu_.Submit(Stochastic(config_.commit_cost), [this, txn_id]() {
      auto it = active_.find(txn_id);
      if (it == active_.end()) return;
      ActiveTxn* t2 = it->second.get();
      t2->stages.commit = rt_->Now() - t2->queries_end_time;
      EmitSpan("proxy.commit", txn_id, t2->queries_end_time,
               t2->stages.commit);
      Respond(t2, TxnOutcome::kCommitted);
    });
    return;
  }
  // Update transaction: send the writeset to the certifier and await the
  // decision.
  t->writeset = t->txn->BuildWriteSet(config_.attach_read_sets);
  t->writeset.txn_id = t->request.txn_id;
  t->writeset.origin = id_;
  // Sharded mode: ship the per-shard snapshot coordinates so each lane
  // certifies against the snapshot this transaction actually read in
  // that shard (hosted covers touched: the LB only routes here when this
  // replica hosts every touched shard).
  if (sharded()) t->writeset.shard_snapshots = t->shard_snapshots;
  t->certify_start_time = rt_->Now();
  t->awaiting_decision = true;
  cert_request_cb_(t->writeset);
}

void Proxy::OnCertDecision(const CertDecision& decision) {
  auto it = active_.find(decision.txn_id);
  if (down_ || it == active_.end()) {
    // Decision for a transaction lost in a crash. If it committed, its
    // writeset reaches this replica through recovery catch-up instead.
    NoteDroppedWhileDown("certification decision", decision.txn_id);
    return;
  }
  ActiveTxn* t = it->second.get();
  if (!t->awaiting_decision) return;  // duplicate (failover re-delivery)
  t->awaiting_decision = false;
  t->decision_time = rt_->Now();
  t->stages.certify = t->decision_time - t->certify_start_time;
  EmitSpan("proxy.certify", decision.txn_id, t->certify_start_time,
           t->stages.certify);
  if (!decision.commit) {
    if (decision.overloaded) {
      // The certifier refused the writeset at its intake bound without
      // certifying it; tell the client to back off, not that it lost a
      // conflict.
      SCREP_LOG(kDebug) << "[replica " << id_ << "] txn " << decision.txn_id
                        << " shed at the certifier intake bound";
      Respond(t, TxnOutcome::kOverloaded);
      return;
    }
    SCREP_LOG(kDebug) << "[replica " << id_
                      << "] certification abort of txn " << decision.txn_id;
    Respond(t, TxnOutcome::kCertificationAbort);
    return;
  }
  if (sharded()) {
    // Queue the local commit into its hosted apply streams at the joint
    // per-shard versions the certifier assigned; publishing it finishes
    // the transaction (no failover/refresh duplicate channels exist in
    // sharded configurations).
    t->writeset.commit_version = decision.commit_version;
    t->writeset.shard_versions = decision.shard_versions;
    ShardedApply apply;
    apply.ws = std::make_shared<const WriteSet>(t->writeset);
    apply.is_local = true;
    apply.enqueue_time = rt_->Now();
    EnqueueShardedApply(std::move(apply));
    DispatchShardedApplies();
    return;
  }
  t->writeset.commit_version = decision.commit_version;
  // Whichever channel commits this version locally finishes the
  // transaction: normally the local apply queued below, but after a
  // certifier failover the same writeset may arrive (or already have
  // arrived, or be mid-apply) through the refresh/catch-up channel.
  local_claims_[decision.commit_version] = decision.txn_id;
  if (decision.commit_version <= v_local()) {
    SettleLocalClaims();
    return;
  }
  if (IsUnpublished(decision.commit_version)) {
    return;  // already queued as a refresh; the claim finishes it
  }
  // Queue the local commit at its slot in the global order; it interleaves
  // with refresh writesets so every replica commits in certifier order.
  PendingApply apply;
  apply.ws = std::make_shared<const WriteSet>(t->writeset);
  apply.is_local = true;
  apply.local_txn = decision.txn_id;
  apply.enqueue_time = rt_->Now();
  pending_index_.Insert(*apply.ws, /*is_local=*/true);
  pending_.emplace(decision.commit_version, std::move(apply));
  peak_pending_writesets_ =
      std::max(peak_pending_writesets_, pending_writesets());
  AdvanceContiguous();
  DispatchApplies();
}

void Proxy::OnRefresh(const WriteSet& ws) {
  // Catch-up path: the sender hands us a plain writeset, so freeze a
  // private copy here.  The live fan-out path (OnRefreshBatch) shares the
  // certifier's frozen objects instead.
  IngestRefresh(std::make_shared<const WriteSet>(ws), /*credited=*/false);
}

bool Proxy::IngestRefresh(WriteSetRef ws, bool credited) {
  SCREP_CHECK(ws->commit_version != kNoVersion);
  if (down_) {
    NoteDroppedWhileDown("refresh writeset", ws->txn_id);
    return false;  // recovery catch-up re-delivers it
  }
  if (ws->commit_version <= v_local() || IsUnpublished(ws->commit_version)) {
    return false;  // duplicate delivery (recovery catch-up overlap)
  }
  // Early certification, arrival direction: abort conflicting active local
  // transactions right away (§IV, hidden-deadlock avoidance).
  if (config_.early_certification) AbortConflictingActives(*ws);
  const DbVersion commit_version = ws->commit_version;
  PendingApply apply;
  apply.ws = std::move(ws);
  apply.is_local = false;
  apply.credited = credited;
  apply.enqueue_time = rt_->Now();
  pending_index_.Insert(*apply.ws, /*is_local=*/false);
  pending_.emplace(commit_version, std::move(apply));
  peak_pending_writesets_ =
      std::max(peak_pending_writesets_, pending_writesets());
  AdvanceContiguous();
  DispatchApplies();
  return true;
}

bool Proxy::IngestShardedRefresh(WriteSetRef ws, ShardId credit_shard,
                                 bool credited) {
  SCREP_CHECK(!ws->shard_versions.empty());
  if (down_) {
    NoteDroppedWhileDown("refresh writeset", ws->txn_id);
    return false;
  }
  if (sharded_pending_.find(ws->txn_id) != sharded_pending_.end()) {
    return false;  // duplicate delivery
  }
  // Publication is atomic across a writeset's touched streams, so one
  // hosted shard already covering its version means all of them do.
  bool fresh = false;
  for (const auto& [shard, version] : ws->shard_versions) {
    if (HostsShard(shard) && version > ShardPublished(shard)) {
      fresh = true;
      break;
    }
  }
  if (!fresh) return false;  // duplicate delivery
  // Early certification, arrival direction (§IV, hidden-deadlock
  // avoidance) — unchanged by sharding.
  if (config_.early_certification) AbortConflictingActives(*ws);
  ShardedApply apply;
  apply.ws = std::move(ws);
  apply.credited = credited;
  apply.credit_shard = credit_shard;
  apply.enqueue_time = rt_->Now();
  EnqueueShardedApply(std::move(apply));
  DispatchShardedApplies();
  return true;
}

void Proxy::EnqueueShardedApply(ShardedApply apply) {
  const TxnId txn = apply.ws->txn_id;
  bool all_hosted = true;
  for (const auto& [shard, version] : apply.ws->shard_versions) {
    if (HostsShard(shard)) {
      apply.hosted_versions.emplace_back(shard, version);
    } else {
      all_hosted = false;
    }
  }
  SCREP_CHECK_MSG(!apply.hosted_versions.empty(),
                  "writeset for txn " << txn << " touches no hosted shard");
  if (all_hosted) {
    apply.hosted_sub = apply.ws;
  } else {
    // Partial replication: only the hosted shards' writes apply here.
    WriteSet sub;
    sub.txn_id = apply.ws->txn_id;
    sub.origin = apply.ws->origin;
    for (const WriteOp& op : apply.ws->ops) {
      if (HostsShard(shard_map_->ShardOf(op.table))) sub.ops.push_back(op);
    }
    apply.hosted_sub = std::make_shared<const WriteSet>(std::move(sub));
  }
  pending_index_.Insert(*apply.hosted_sub, apply.is_local);
  for (const auto& [shard, version] : apply.hosted_versions) {
    ShardStream& stream =
        streams_[static_cast<size_t>(stream_index_[static_cast<size_t>(shard)])];
    SCREP_CHECK_MSG(stream.queue.emplace(version, txn).second,
                    "duplicate version " << version << " in shard " << shard
                                         << " stream");
  }
  sharded_pending_.emplace(txn, std::move(apply));
  peak_pending_writesets_ =
      std::max(peak_pending_writesets_, pending_writesets());
}

void Proxy::DispatchShardedApplies() {
  // Start every stream head that is next in line in ALL of its touched
  // hosted streams: serial within a stream, parallel across streams.
  // Joint versions are assigned atomically in certifier decide order, so
  // two cross-shard writesets can never wait on each other's heads.
  bool progress = true;
  while (progress) {
    progress = false;
    for (ShardStream& stream : streams_) {
      if (stream.applying || stream.queue.empty()) continue;
      const auto& [version, txn] = *stream.queue.begin();
      if (version != stream.published + 1) continue;  // gap below
      auto it = sharded_pending_.find(txn);
      SCREP_CHECK(it != sharded_pending_.end());
      bool ready = true;
      for (const auto& [shard, v] : it->second.hosted_versions) {
        const ShardStream& other =
            streams_[static_cast<size_t>(
                stream_index_[static_cast<size_t>(shard)])];
        if (other.applying || other.published + 1 != v) {
          ready = false;
          break;
        }
      }
      if (!ready) continue;
      StartShardedApply(txn);
      progress = true;
    }
  }
}

void Proxy::StartShardedApply(TxnId txn) {
  auto it = sharded_pending_.find(txn);
  SCREP_CHECK(it != sharded_pending_.end());
  ShardedApply& apply = it->second;
  for (const auto& [shard, version] : apply.hosted_versions) {
    (void)version;
    streams_[static_cast<size_t>(stream_index_[static_cast<size_t>(shard)])]
        .applying = true;
  }
  Duration cost;
  if (apply.is_local) {
    auto ait = active_.find(txn);
    SCREP_CHECK(ait != active_.end());
    ActiveTxn* t = ait->second.get();
    t->apply_start_time = rt_->Now();
    t->stages.sync = t->apply_start_time - t->decision_time;
    EmitSpan("proxy.lane_wait", txn, t->decision_time, t->stages.sync);
    cost = Stochastic(config_.commit_cost);
  } else {
    cost = Stochastic(config_.refresh_base +
                      config_.refresh_per_op *
                          static_cast<Duration>(apply.hosted_sub->size()));
  }
  const uint64_t epoch = epoch_;
  cpu_.Submit(cost, [this, epoch, txn]() {
    if (epoch != epoch_ || down_) return;
    FinishShardedApply(txn);
  });
}

void Proxy::FinishShardedApply(TxnId txn) {
  auto it = sharded_pending_.find(txn);
  SCREP_CHECK(it != sharded_pending_.end());
  ShardedApply apply = std::move(it->second);
  sharded_pending_.erase(it);
  // Apply the hosted writes at the next *local* dense version, then
  // advance every touched stream — one atomic step, so BEGIN snapshots
  // can never observe a partially published writeset.
  const Status st = db_->ApplyWriteSetLocal(*apply.hosted_sub);
  SCREP_CHECK_MSG(st.ok(), "apply failed: " << st.ToString());
  pending_index_.Erase(*apply.hosted_sub);
  for (const auto& [shard, version] : apply.hosted_versions) {
    ShardStream& stream =
        streams_[static_cast<size_t>(stream_index_[static_cast<size_t>(shard)])];
    SCREP_CHECK(!stream.queue.empty() &&
                stream.queue.begin()->first == version);
    stream.queue.erase(stream.queue.begin());
    stream.published = version;
    stream.applying = false;
  }
  if (!apply.is_local) {
    ++refresh_applied_;
    if (ctr_refresh_applied_ != nullptr) ctr_refresh_applied_->Increment();
  }
  if (apply.credited && sharded_credit_cb_) {
    sharded_credit_cb_(apply.credit_shard, 1);
  }
  if (event_log_ != nullptr && event_log_->enabled()) {
    obs::Event e;
    e.kind = obs::EventKind::kApply;
    e.at = rt_->Now();
    e.txn = apply.ws->txn_id;
    e.replica = id_;
    e.commit_version = apply.ws->commit_version;
    e.local = apply.is_local;
    e.shard_versions = apply.hosted_versions;
    event_log_->Append(std::move(e));
  }
  if (apply.is_local) {
    auto ait = active_.find(txn);
    if (ait != active_.end()) {
      ActiveTxn* t = ait->second.get();
      t->exec_done_time = rt_->Now();
      EmitSpan("proxy.apply", txn, t->apply_start_time,
               t->exec_done_time - t->apply_start_time);
      t->local_commit_time = rt_->Now();
      t->stages.commit = t->local_commit_time - t->apply_start_time;
      Respond(t, TxnOutcome::kCommitted);
    }
  }
  ReleaseShardedBeginWaiters();
  DispatchShardedApplies();
}

void Proxy::AbortConflictingActives(const WriteSet& ws) {
  // One hash set over the refresh's keys; each active transaction then
  // costs O(|its partial writeset|) instead of O(|ws| * |partial|).
  const WriteKeySet refresh_keys(ws);
  for (auto& [txn_id, t] : active_) {
    (void)txn_id;
    if (t->aborted_early) continue;
    // Transactions already at the certifier are resolved there: the
    // refresh writeset committed first, so certification will abort them.
    if (t->awaiting_decision || t->awaiting_global) continue;
    if (t->txn == nullptr || t->txn->read_only()) continue;
    if (refresh_keys.Intersects(t->txn->PartialWriteSet())) {
      t->aborted_early = true;  // surfaced at the next statement boundary
      ++early_aborts_;
      if (ctr_early_aborts_ != nullptr) ctr_early_aborts_->Increment();
      SCREP_LOG(kDebug) << "[replica " << id_ << "] early abort of txn "
                        << t->request.txn_id
                        << ": arriving refresh writeset (version "
                        << ws.commit_version << ") conflicts";
    }
  }
}

bool Proxy::ConflictsWithPendingRefresh(const WriteSet& partial) const {
  return pending_index_.ConflictsWithQueuedRefresh(partial);
}

bool Proxy::IsUnpublished(DbVersion version) const {
  return pending_.count(version) != 0 || executing_.count(version) != 0 ||
         executed_.count(version) != 0;
}

void Proxy::AdvanceContiguous() {
  while (IsUnpublished(contiguous_ + 1)) {
    ++contiguous_;
    // The version just became dispatchable gap-wise; remember when, so
    // StartApply can split its ordering wait into gap wait vs. lane wait.
    auto it = pending_.find(contiguous_);
    if (it != pending_.end()) it->second.ready_time = rt_->Now();
  }
}

void Proxy::DispatchApplies() {
  auto it = pending_.begin();
  while (it != pending_.end() && apply_lanes_.FreeServers() > 0) {
    const DbVersion version = it->first;
    if (version > contiguous_) {
      // Version gap below: an unseen earlier writeset could conflict, so
      // nothing above the gap may dispatch yet.
      break;
    }
    if (pending_index_.BlockedByEarlier(*it->second.ws)) {
      ++it;  // must wait for a conflicting earlier writeset to publish
      continue;
    }
    ++it;  // advance before StartApply erases this entry
    StartApply(version);
  }
}

void Proxy::StartApply(DbVersion version) {
  SCREP_CHECK(apply_lanes_.TryAcquire());
  auto it = pending_.find(version);
  SCREP_CHECK(it != pending_.end());
  PendingApply apply = std::move(it->second);
  pending_.erase(it);
  pending_index_.MarkDispatched(*apply.ws);
  executing_.insert(version);

  Duration cost;
  if (apply.is_local) {
    auto ait = active_.find(apply.local_txn);
    SCREP_CHECK(ait != active_.end());
    ActiveTxn* t = ait->second.get();
    t->apply_start_time = rt_->Now();
    t->stages.sync = t->apply_start_time - t->decision_time;
    // The ordering wait splits at the moment the contiguity watermark
    // crossed this version: before it, the writeset waited for the gap
    // below to fill (gap wait); after it, for a free lane and any
    // conflicting earlier writesets (lane wait).
    const TimePoint ready =
        apply.ready_time > 0 ? apply.ready_time : t->decision_time;
    EmitSpan("proxy.gap_wait", apply.local_txn, t->decision_time,
             ready - t->decision_time);
    EmitSpan("proxy.lane_wait", apply.local_txn, ready,
             t->apply_start_time - ready);
    cost = Stochastic(config_.commit_cost);
  } else {
    cost = Stochastic(config_.refresh_base +
                      config_.refresh_per_op *
                          static_cast<Duration>(apply.ws->size()));
  }

  const uint64_t epoch = epoch_;
  cpu_.Submit(cost, [this, epoch, version, apply = std::move(apply)]() mutable {
    if (epoch != epoch_ || down_) return;  // crashed meanwhile; Crash()
                                           // already returned the lane
    executing_.erase(version);
    apply_lanes_.Release();
    if (apply.is_local) {
      auto ait = active_.find(apply.local_txn);
      if (ait != active_.end()) {
        ActiveTxn* t = ait->second.get();
        t->exec_done_time = rt_->Now();
        EmitSpan("proxy.apply", apply.local_txn, t->apply_start_time,
                 t->exec_done_time - t->apply_start_time);
      }
    }
    executed_.emplace(version, std::move(apply));
    PublishReady();
    DispatchApplies();
  });
}

void Proxy::PublishReady() {
  // Publish executed writesets in strict commit-version order: V_local
  // only ever advances by one, and each version's side effects (event
  // log, eager report, local-commit settlement, BEGIN-waiter release)
  // fire before the next version's — exactly the serial apply path's
  // externally visible order.
  for (auto it = executed_.find(v_local() + 1); it != executed_.end();
       it = executed_.find(v_local() + 1)) {
    PendingApply apply = std::move(it->second);
    executed_.erase(it);
    const Status st = db_->ApplyWriteSet(*apply.ws, /*force_log=*/false);
    SCREP_CHECK_MSG(st.ok(), "apply failed: " << st.ToString());
    pending_index_.Erase(*apply.ws);
    if (!apply.is_local) {
      ++refresh_applied_;
      if (ctr_refresh_applied_ != nullptr) ctr_refresh_applied_->Increment();
    }
    // Publishing frees the apply-pipeline slot this writeset held:
    // return its refresh credit so the certifier may send the next one.
    if (apply.credited && credit_cb_) credit_cb_(1);
    if (event_log_ != nullptr && event_log_->enabled()) {
      obs::Event e;
      e.kind = obs::EventKind::kApply;
      e.at = rt_->Now();
      e.txn = apply.ws->txn_id;
      e.replica = id_;
      e.commit_version = apply.ws->commit_version;
      e.local = apply.is_local;
      event_log_->Append(std::move(e));
    }
    if (eager_) replica_committed_cb_(apply.ws->txn_id);
    SettleLocalClaims();
    ReleaseBeginWaiters();
  }
}

void Proxy::SettleLocalClaims() {
  const DbVersion v = v_local();
  while (!local_claims_.empty() && local_claims_.begin()->first <= v) {
    const TxnId txn_id = local_claims_.begin()->second;
    local_claims_.erase(local_claims_.begin());
    auto it = active_.find(txn_id);
    if (it == active_.end()) continue;  // lost in a crash
    FinishLocalCommit(it->second.get());
  }
}

void Proxy::FinishLocalCommit(ActiveTxn* t) {
  if (t->apply_start_time == 0) {
    // Committed through the refresh channel (certifier failover): the
    // whole wait from the decision to the version's local commit is one
    // claim wait — there was no local apply to decompose.
    EmitSpan("proxy.claim_wait", t->request.txn_id, t->decision_time,
             rt_->Now() - t->decision_time);
    t->apply_start_time = rt_->Now();
  } else if (t->exec_done_time > 0) {
    // The local apply finished on its lane at exec_done_time; since then
    // the transaction waited for every earlier version to publish.
    EmitSpan("proxy.publish_wait", t->request.txn_id, t->exec_done_time,
             rt_->Now() - t->exec_done_time);
  }
  t->local_commit_time = rt_->Now();
  t->stages.commit = t->local_commit_time - t->apply_start_time;
  if (eager_) {
    if (t->global_done_early) {
      // The certifier already declared the global commit (a membership
      // change can complete it before our own local commit finishes).
      t->stages.global = 0;
      Respond(t, TxnOutcome::kCommitted);
      return;
    }
    // Global commit delay: hold the acknowledgment until every replica
    // has committed this transaction (§IV-D).
    t->awaiting_global = true;
    return;
  }
  Respond(t, TxnOutcome::kCommitted);
}

void Proxy::OnGlobalCommit(TxnId txn) {
  auto it = active_.find(txn);
  if (down_ || it == active_.end()) {
    NoteDroppedWhileDown("global-commit notification", txn);
    return;
  }
  ActiveTxn* t = it->second.get();
  if (!t->awaiting_global) {
    // Local commit still in flight; remember the verdict.
    t->global_done_early = true;
    return;
  }
  t->stages.global = rt_->Now() - t->local_commit_time;
  EmitSpan("eager.global_wait", txn, t->local_commit_time, t->stages.global);
  Respond(t, TxnOutcome::kCommitted);
}

void Proxy::Respond(ActiveTxn* t, TxnOutcome outcome) {
  if (eager_ && outcome == TxnOutcome::kCommitted && t->txn != nullptr &&
      !t->txn->read_only()) {
    RecordBlockedTime(t->stages.global);
  }
  TxnResponse response;
  response.txn_id = t->request.txn_id;
  response.type = t->request.type;
  response.session = t->request.session;
  response.client_id = t->request.client_id;
  response.outcome = outcome;
  response.read_only = t->txn == nullptr || t->txn->read_only();
  response.replica = id_;
  response.v_local_after = v_local();
  response.snapshot = t->txn != nullptr ? t->txn->snapshot() : 0;
  response.stages = t->stages;
  response.submit_time = t->request.submit_time;
  response.start_time = t->exec_start_time;
  if (t->request.collect_results && outcome == TxnOutcome::kCommitted) {
    response.results = std::move(t->results);
  }
  if (sharded()) {
    response.shard_snapshots = t->shard_snapshots;
    response.shard_locals.reserve(hosted_shards_.size());
    for (ShardId s : hosted_shards_) {
      response.shard_locals.emplace_back(s, ShardPublished(s));
    }
  }
  if (outcome == TxnOutcome::kCommitted && !response.read_only) {
    response.commit_version = t->writeset.commit_version;
    if (sharded()) response.shard_versions = t->writeset.shard_versions;
    for (TableId table : t->writeset.TablesWritten()) {
      // Sharded mode: a table's fine-grained tag advances in its own
      // shard's version space.
      const DbVersion v =
          sharded() ? ShardVersionOf(t->writeset.shard_versions,
                                     shard_map_->ShardOf(table))
                    : t->writeset.commit_version;
      response.written_table_versions.emplace_back(table, v);
    }
    for (const WriteOp& op : t->writeset.ops) {
      response.keys_written.emplace_back(op.table, op.key);
    }
  }
  response_cb_(response);
  active_.erase(t->request.txn_id);
}

}  // namespace screp
