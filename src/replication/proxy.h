// The per-replica proxy (paper §IV): intercepts all requests to the local
// DBMS, executes client transactions against snapshot isolation, applies
// refresh writesets in the certifier's global order, tracks V_local and
// per-table versions, enforces the synchronization start delay, and
// performs early certification to avoid the hidden-deadlock problem.

#ifndef SCREP_REPLICATION_PROXY_H_
#define SCREP_REPLICATION_PROXY_H_

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "obs/observability.h"
#include "replication/conflict_index.h"
#include "replication/message.h"
#include "replication/shard_map.h"
#include "sim/resource.h"
#include "runtime/runtime.h"
#include "sql/executor.h"
#include "sql/table_set.h"
#include "storage/database.h"
#include "storage/transaction.h"

namespace screp {

/// Replica service-time model and behaviour knobs.
///
/// The mean service times are calibrated so a replica behaves like the
/// paper's testbed nodes (SQL Server 2008 on a Core 2 Duo): statements
/// cost a few milliseconds, and the serialized refresh-application stream
/// saturates under update-heavy load.  Service times are *stochastic*
/// (exponential spread plus rare multi-ms stalls modelling OS/disk
/// interference): the max-over-replicas of the resulting apply lag is
/// exactly what makes the eager scheme's global commit delay an order of
/// magnitude larger than the lazy schemes' start delays (paper Fig. 4/6).
struct ProxyConfig {
  /// Parallel service units of the replica machine (the testbed's Core 2
  /// Duo => 2).
  int cpu_cores = 2;
  /// Mean CPU time of a read statement.
  Duration read_stmt_base = Millis(2.5);
  /// Mean CPU time of an update statement (index + row maintenance).
  Duration update_stmt_base = Millis(4.0);
  /// Additional CPU per row the access path examines.
  Duration per_row_cost = Micros(25);
  /// CPU time to commit a local transaction.
  Duration commit_cost = Millis(1.2);
  /// Base CPU time to apply one refresh writeset (serialized, in commit
  /// order).
  Duration refresh_base = Millis(1.0);
  /// Additional CPU per record in a refresh writeset: applying a refresh
  /// re-executes its writes statement by statement, so the cost scales
  /// with the writeset size.
  Duration refresh_per_op = Millis(2.5);
  /// Client<->replica round trip paid per statement (the app server talks
  /// to the DBMS statement by statement).
  Duration stmt_round_trip = Micros(300);
  /// Fraction of each service time drawn from an exponential (0 =
  /// deterministic, 1 = fully exponential). Mean is preserved.
  double service_spread = 0.7;
  /// Probability that a work item hits a stall (checkpoint, page flush,
  /// scheduler interference) ...
  double stall_probability = 0.012;
  /// ... of this mean (exponential) duration.
  Duration stall_duration = Millis(40);
  /// Seed for the per-replica service-time stream.
  uint64_t seed = 1;
  /// Early certification on (paper default); the ablation benchmark turns
  /// it off.
  bool early_certification = true;
  /// Apply lanes: how many certified writesets may *execute* concurrently
  /// on the replica CPU.  A writeset is dispatched to a lane as soon as
  /// it conflicts with no earlier un-published writeset; execution is out
  /// of order, but V_local only advances — and BEGIN waiters, local
  /// commits and eager reports only fire — in strict commit-version
  /// order, so every consistency configuration sees the same versioned
  /// states as the serial apply path.  1 (the paper's serial apply)
  /// reproduces the pre-lane behaviour exactly.
  int apply_lanes = 1;
  /// Attach read sets to writesets (set automatically when the system
  /// runs in serializable certification mode).
  bool attach_read_sets = false;
  /// TEST ONLY: admit every BEGIN immediately, skipping the
  /// synchronization start-delay version check.  Deliberately breaks the
  /// guarantee so tests can prove the online auditor catches it.
  bool test_skip_version_check = false;
};

/// One replica's middleware component.
class Proxy {
 public:
  using CertRequestCallback = std::function<void(const WriteSet&)>;
  using ResponseCallback = std::function<void(const TxnResponse&)>;
  using ReplicaCommittedCallback = std::function<void(TxnId)>;
  using CreditCallback = std::function<void(int credits)>;

  Proxy(runtime::Runtime* rt, ReplicaId id, Database* db,
        const sql::TransactionRegistry* registry, ProxyConfig config,
        bool eager);

  /// Wires the writeset channel to the certifier.
  void SetCertRequestCallback(CertRequestCallback cb) {
    cert_request_cb_ = std::move(cb);
  }
  /// Wires responses back to the load balancer.
  void SetResponseCallback(ResponseCallback cb) {
    response_cb_ = std::move(cb);
  }
  /// Wires eager commit notifications to the certifier.
  void SetReplicaCommittedCallback(ReplicaCommittedCallback cb) {
    replica_committed_cb_ = std::move(cb);
  }
  /// Wires refresh flow-control credit returns to the certifier.  Only
  /// set when the certifier runs with a refresh credit window; unset
  /// (the default) the proxy accounts no credits at all.
  void SetCreditCallback(CreditCallback cb) { credit_cb_ = std::move(cb); }

  /// Sharded credit returns: one credit per published refresh writeset,
  /// on the (shard, replica) channel the certifier sent it on.
  using ShardedCreditCallback = std::function<void(ShardId shard, int credits)>;
  void SetShardedCreditCallback(ShardedCreditCallback cb) {
    sharded_credit_cb_ = std::move(cb);
  }

  /// Switches this proxy into sharded (partitioned-certification) mode:
  /// `map` outlives the proxy, `hosted` is the set of shards this
  /// replica hosts (empty = all of them).  In sharded mode the proxy
  /// keeps one in-order apply stream per hosted shard in that shard's
  /// own version space, BEGIN waits on per-shard required versions, and
  /// writesets apply when they are next in line in EVERY touched hosted
  /// stream (serial within a stream, parallel across streams).  The
  /// local database versions stay dense via ApplyWriteSetLocal.
  void EnableSharding(const ShardMap* map, std::vector<ShardId> hosted);
  bool sharded() const { return shard_map_ != nullptr; }
  bool HostsShard(ShardId shard) const {
    return stream_index_[static_cast<size_t>(shard)] >= 0;
  }
  const std::vector<ShardId>& hosted_shards() const { return hosted_shards_; }
  /// Latest shard version published locally for a hosted shard.
  DbVersion ShardPublished(ShardId shard) const;

  /// Sharded-mode dispatch: BEGIN is delayed until every hosted shard
  /// named in `shard_required` has published its required version.
  void OnTxnRequestSharded(
      const TxnRequest& request,
      const std::vector<std::pair<int32_t, DbVersion>>& shard_required);

  /// Sharded-mode refresh delivery on one hosted shard's channel.  With
  /// flow control on, each writeset carries one credit on that channel,
  /// returned on publish (or immediately on duplicate delivery).
  void OnShardedRefreshBatch(ShardId shard, const RefreshBatch& batch) {
    for (const WriteSetRef& ws : batch.writesets) {
      if (!IngestShardedRefresh(ws, shard,
                                /*credited=*/sharded_credit_cb_ != nullptr) &&
          sharded_credit_cb_) {
        sharded_credit_cb_(shard, 1);
      }
    }
  }

  /// Attaches the system's observability layer: per-transaction stage
  /// spans (start delay, statements, certification, ordering wait, commit,
  /// eager global wait) plus early-abort / refresh / drop counters, the
  /// structured event log (BEGIN admissions, writeset applies) and — when
  /// auditing — the blocked-time-by-cause staleness histogram.
  void SetObservability(obs::Observability* obs);

  /// Tells the proxy which tracker the version tags come from under the
  /// system's consistency configuration, for event annotation and
  /// blocked-time attribution.  Called by the system at wiring time.
  void SetWaitCause(obs::WaitCause cause) { wait_cause_ = cause; }

  /// A routed transaction request arrives; the load balancer tagged it
  /// with `required_version` — the replica delays BEGIN until
  /// V_local >= required_version (the synchronization start delay).
  void OnTxnRequest(const TxnRequest& request, DbVersion required_version);

  /// The certifier's decision for a local update transaction.
  void OnCertDecision(const CertDecision& decision);

  /// A refresh writeset outside the credited channel (the recovery
  /// catch-up stream): never consumes or returns credits.
  void OnRefresh(const WriteSet& ws);

  /// A refresh message from the certifier: one or more writesets (one
  /// group-commit force's worth when refresh batching is on), unpacked
  /// in order through the apply lanes.  The batch carries references to
  /// the certifier's frozen writesets — ingesting one is a refcount
  /// bump, not a row-image copy.  With flow control on, each writeset
  /// carries one credit: returned on publish, or immediately when the
  /// writeset is not accepted (duplicate delivery).
  void OnRefreshBatch(const RefreshBatch& batch) {
    for (const WriteSetRef& ws : batch.writesets) {
      if (!IngestRefresh(ws, /*credited=*/credit_cb_ != nullptr) &&
          credit_cb_) {
        credit_cb_(1);
      }
    }
  }

  /// Eager mode: the certifier reports the global commit of a local
  /// transaction; the client can finally be acknowledged.
  void OnGlobalCommit(TxnId txn);

  /// Crash-stop failure (paper's crash-recovery model): all in-flight
  /// transactions and pending writesets vanish; incoming messages are
  /// ignored until Restart(). The database content survives — the replica
  /// recovers its own durable state — but refresh writesets missed while
  /// down must be re-fetched from the certifier's log.
  void Crash();

  /// Brings the replica back up (the system then streams the missed
  /// writesets from the certifier into OnRefresh).
  void Restart();

  bool down() const { return down_; }
  int64_t dropped_while_down() const { return dropped_while_down_; }

  /// Certifier failover: re-sends the writeset of every transaction still
  /// awaiting a certification decision (certification is idempotent at
  /// the certifier). Returns how many were resubmitted.
  int ResubmitPendingCertifications();

  /// Invokes `fn` once V_local reaches `version` (immediately if it
  /// already has). Used by recovery: the replica rejoins routing only
  /// after its catch-up stream has fully applied. Waiters are discarded
  /// on a crash.
  void CallWhenVersionReached(DbVersion version, std::function<void()> fn);

  ReplicaId id() const { return id_; }
  DbVersion v_local() const { return db_->CommittedVersion(); }
  /// Client transactions currently being served (the load-balancing
  /// signal).
  size_t active_transactions() const { return active_.size(); }
  /// Refresh/local writesets received but not yet published: queued,
  /// executing in an apply lane, or executed awaiting the in-order
  /// version publish.
  size_t pending_writesets() const {
    return pending_.size() + executing_.size() + executed_.size() +
           sharded_pending_.size();
  }
  /// High-water mark of pending_writesets() over the proxy's lifetime —
  /// what the refresh credit window is supposed to bound.
  size_t peak_pending_writesets() const { return peak_pending_writesets_; }
  /// Writesets executed out of order, waiting for an earlier version to
  /// finish before V_local may advance over them.
  size_t publish_backlog() const { return executed_.size(); }

  Resource* cpu() { return &cpu_; }
  /// The apply-lane slot pool (its Busy()/Utilization() report lane
  /// occupancy).
  Resource* apply_lanes() { return &apply_lanes_; }
  int64_t refresh_applied_count() const { return refresh_applied_; }
  int64_t early_abort_count() const { return early_aborts_; }

  /// The oldest snapshot any active transaction reads at (V_local when
  /// idle) — the MVCC garbage-collection horizon.
  DbVersion OldestActiveSnapshot() const;

 private:
  /// A client transaction in flight at this replica.
  struct ActiveTxn {
    TxnRequest request;
    DbVersion required_version = 0;  ///< the load balancer's version tag
    const sql::PreparedTransaction* prepared = nullptr;
    std::unique_ptr<Transaction> txn;
    size_t next_stmt = 0;
    int64_t rows_examined = 0;
    /// Per-statement result rows, kept only when the request asked for
    /// them (TxnRequest::collect_results).
    std::vector<std::vector<Row>> results;

    bool aborted_early = false;     // flagged by early certification
    bool awaiting_decision = false;  // writeset at the certifier
    bool awaiting_global = false;    // eager: waiting for global commit

    /// Sharded mode: the per-shard version tags the request carried, and
    /// the hosted shards' published versions captured at BEGIN (the
    /// transaction's per-shard snapshot coordinates).
    std::vector<std::pair<int32_t, DbVersion>> shard_required;
    std::vector<std::pair<int32_t, DbVersion>> shard_snapshots;
    // Eager: the global commit arrived before the local commit finished
    // (possible when a crash lowers the membership bar).
    bool global_done_early = false;

    WriteSet writeset;  // built at commit request

    // Stage timestamps.
    TimePoint arrive_time = 0;
    TimePoint exec_start_time = 0;
    TimePoint queries_end_time = 0;
    TimePoint certify_start_time = 0;
    TimePoint decision_time = 0;
    TimePoint apply_start_time = 0;
    TimePoint exec_done_time = 0;  ///< local apply finished on its lane
    TimePoint local_commit_time = 0;
    StageTimes stages;
  };

  /// An entry waiting its turn in the global commit order.  The writeset
  /// is a frozen reference: refresh entries share the certifier's object,
  /// local entries freeze their own copy at decision time.
  struct PendingApply {
    WriteSetRef ws;
    bool is_local = false;  // local client commit vs. refresh
    /// Arrived through the credited refresh channel; publishing it
    /// returns one credit to the certifier.
    bool credited = false;
    TxnId local_txn = 0;
    TimePoint enqueue_time = 0;
    /// When the contiguity watermark crossed this version (it became
    /// dispatchable gap-wise); splits the ordering wait into gap wait vs.
    /// lane wait for the profiler.
    TimePoint ready_time = 0;
  };

  /// Queues one refresh writeset through the apply pipeline; returns
  /// false when it is dropped instead (down, or duplicate delivery).
  bool IngestRefresh(WriteSetRef ws, bool credited);

  /// One in-order apply stream per hosted shard (sharded mode).
  struct ShardStream {
    DbVersion published = 0;  ///< latest shard version applied locally
    bool applying = false;    ///< the head writeset is executing
    /// Received writesets by shard version; the head applies only when
    /// its version is published + 1 (the streams are dense: a hosting
    /// replica receives every writeset touching its shard).
    std::map<DbVersion, TxnId> queue;
  };

  /// One writeset moving through the sharded apply streams.
  struct ShardedApply {
    WriteSetRef ws;
    /// (shard, version) for the touched shards this replica hosts.
    std::vector<std::pair<ShardId, DbVersion>> hosted_versions;
    /// The writeset restricted to hosted shards — what actually applies
    /// locally (aliases `ws` when every touched shard is hosted).
    WriteSetRef hosted_sub;
    bool is_local = false;
    bool credited = false;
    ShardId credit_shard = -1;
    TimePoint enqueue_time = 0;
  };

  /// Queues one sharded refresh writeset; false when dropped (duplicate).
  bool IngestShardedRefresh(WriteSetRef ws, ShardId credit_shard,
                            bool credited);
  /// Enqueues one writeset (local or refresh) into its hosted streams.
  void EnqueueShardedApply(ShardedApply apply);
  /// Starts every stream-head writeset whose touched hosted streams all
  /// have it next in line, until no further progress.
  void DispatchShardedApplies();
  void StartShardedApply(TxnId txn);
  /// Completion of one sharded apply: installs the hosted writes,
  /// advances every touched stream atomically, publishes side effects.
  void FinishShardedApply(TxnId txn);
  /// True when every hosted (shard, version) requirement is published.
  bool ShardedRequirementMet(
      const std::vector<std::pair<int32_t, DbVersion>>& required) const;
  void ReleaseShardedBeginWaiters();

  void StartExecution(ActiveTxn* t);
  void ExecuteNextStatement(ActiveTxn* t);
  void OnStatementsDone(ActiveTxn* t);
  /// Finishes decided local transactions whose commit version has been
  /// applied locally (by either the local-apply or refresh channel).
  void SettleLocalClaims();
  void FinishLocalCommit(ActiveTxn* t);
  void Respond(ActiveTxn* t, TxnOutcome outcome);

  /// Dispatches queued writesets into free apply lanes, lowest version
  /// first, as long as the dispatch rule allows (no version gap below,
  /// no conflict with an earlier un-published writeset).
  void DispatchApplies();
  /// Starts executing one queued writeset on a lane.
  void StartApply(DbVersion version);
  /// Publishes executed writesets in strict commit-version order:
  /// advances V_local, fires the event log / eager reports / local-commit
  /// settlement / BEGIN-waiter release for each version.
  void PublishReady();
  /// True when `version` is received but not yet published (queued,
  /// executing, or awaiting publish).
  bool IsUnpublished(DbVersion version) const;
  /// Advances the received-contiguously watermark after an arrival.
  void AdvanceContiguous();
  /// Releases transactions whose required version has been reached.
  void ReleaseBeginWaiters();
  /// Early certification, arrival direction: aborts active local
  /// transactions whose partial writesets conflict with `ws`.
  void AbortConflictingActives(const WriteSet& ws);
  /// Early certification, statement direction: true when the partial
  /// writeset conflicts with any queued refresh writeset.
  bool ConflictsWithPendingRefresh(const WriteSet& partial) const;

  /// Applies the stochastic service-time model to a mean cost.
  Duration Stochastic(Duration mean_cost);

  /// Records a span on this replica's trace row (no-op without a tracer).
  void EmitSpan(const char* name, TxnId txn, TimePoint start, Duration duration,
                const char* arg_name = nullptr, int64_t arg_value = 0);
  /// Adds to the blocked-time-by-cause staleness histogram (auditing
  /// only): the synchronization start delay for the lazy schemes, the
  /// global commit wait for eager.
  void RecordBlockedTime(Duration blocked);
  /// Counts + logs a message discarded because the replica is down (or the
  /// transaction was lost in a crash).
  void NoteDroppedWhileDown(const char* what, TxnId txn);

  runtime::Runtime* rt_;
  ReplicaId id_;
  Database* db_;
  const sql::TransactionRegistry* registry_;
  ProxyConfig config_;
  bool eager_;
  Rng service_rng_;

  Resource cpu_;
  /// Apply-lane slot pool: one held slot per writeset currently
  /// executing.  Execution time is still served by `cpu_` (applies
  /// compete with client statements for the replica cores, as before);
  /// the lanes only bound how many applies may be in flight at once.
  Resource apply_lanes_;

  std::unordered_map<TxnId, std::unique_ptr<ActiveTxn>> active_;
  std::multimap<DbVersion, TxnId> begin_waiters_;
  std::multimap<DbVersion, std::function<void()>> version_waiters_;
  /// Received writesets not yet dispatched, keyed by commit version.
  std::map<DbVersion, PendingApply> pending_;
  /// Versions currently executing in an apply lane.
  std::set<DbVersion> executing_;
  /// Executed out of order, awaiting the in-order version publish.
  std::map<DbVersion, PendingApply> executed_;
  /// Keyed index over every un-published writeset, for O(|writeset|)
  /// early-certification probes and lane dispatch checks.
  PendingApplyIndex pending_index_;
  /// Highest version v such that every version in (V_local, v] has been
  /// received — a writeset above this gap must wait (an unseen earlier
  /// writeset could conflict with it).
  DbVersion contiguous_ = 0;
  /// Sharded mode (null shard_map_ = single-stream mode, all of the
  /// below unused).
  const ShardMap* shard_map_ = nullptr;
  std::vector<ShardId> hosted_shards_;
  /// shard -> index into streams_ (-1 = not hosted).
  std::vector<int> stream_index_;
  std::vector<ShardStream> streams_;
  std::unordered_map<TxnId, ShardedApply> sharded_pending_;
  /// BEGINs waiting on per-shard required versions, rescanned on publish.
  std::vector<TxnId> sharded_begin_waiters_;

  /// Decided local transactions awaiting their version's local commit —
  /// normally satisfied by the queued local apply, but after a certifier
  /// failover the same writeset may arrive through the refresh/catch-up
  /// channel instead; whichever channel commits the version finishes the
  /// transaction.
  std::map<DbVersion, TxnId> local_claims_;

  int64_t refresh_applied_ = 0;
  int64_t early_aborts_ = 0;
  size_t peak_pending_writesets_ = 0;
  bool down_ = false;
  uint64_t epoch_ = 0;  ///< bumped on crash: stale callbacks bail out
  int64_t dropped_while_down_ = 0;

  // Observability (all optional; null until SetObservability).
  obs::Tracer* tracer_ = nullptr;
  obs::Counter* ctr_early_aborts_ = nullptr;
  obs::Counter* ctr_refresh_applied_ = nullptr;
  obs::Counter* ctr_dropped_ = nullptr;
  obs::EventLog* event_log_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  bool audit_ = false;
  obs::WaitCause wait_cause_ = obs::WaitCause::kNone;
  /// "staleness.blocked.<cause>_us" (shared across replicas); created
  /// lazily — and only when auditing — so audit-off metrics output is
  /// unchanged.
  Histogram* blocked_hist_ = nullptr;

  CertRequestCallback cert_request_cb_;
  ResponseCallback response_cb_;
  ReplicaCommittedCallback replica_committed_cb_;
  CreditCallback credit_cb_;
  ShardedCreditCallback sharded_credit_cb_;
};

}  // namespace screp

#endif  // SCREP_REPLICATION_PROXY_H_
