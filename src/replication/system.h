// ReplicatedSystem: builds and wires the whole multi-master cluster —
// load balancer, certifier, N replicas — over a simulated network, and
// exposes the client entry point (paper Fig. 2).

#ifndef SCREP_REPLICATION_SYSTEM_H_
#define SCREP_REPLICATION_SYSTEM_H_

#include <functional>
#include <memory>
#include <vector>

#include "consistency/history.h"
#include "core/consistency_level.h"
#include "net/channel.h"
#include "obs/observability.h"
#include "replication/certifier.h"
#include "replication/load_balancer.h"
#include "replication/replica.h"
#include "replication/shard_map.h"
#include "replication/sharded_certifier.h"
#include "runtime/runtime.h"
#include "sql/table_set.h"

namespace screp {

/// The cluster interconnect: one LinkConfig per hop class
/// (Gigabit-Ethernet-ish defaults).  Beyond the base one-way latency each
/// link can model jitter, per-byte cost and injected faults — see
/// net/link.h.
struct NetworkConfig {
  /// Client <-> load balancer (both directions).
  net::LinkConfig client_lb{Micros(150)};
  /// Load balancer <-> replica proxies (both directions).
  net::LinkConfig lb_replica{Micros(120)};
  /// Replica <-> certifier control traffic (certification requests,
  /// decisions, eager commit notices / global commits, standby stream).
  net::LinkConfig replica_certifier{Micros(120)};
  /// Certifier -> replica refresh fan-out.  Kept separate from
  /// `replica_certifier` so loss/jitter can be injected on the refresh
  /// stream alone; runs in reliable (sequence-number + redelivery) mode
  /// by default, so a dropped refresh is retransmitted instead of
  /// stalling the apply stream forever.
  net::LinkConfig refresh{Micros(120)};
  /// Seed of the per-channel jitter/fault RNG streams (independent of
  /// the workload and service-time streams).
  uint64_t seed = 0x6e657473ULL;

  NetworkConfig() { refresh.reliability = net::Reliability::kReliable; }
};

/// Everything needed to stand up a system.
struct SystemConfig {
  int replica_count = 4;
  ConsistencyLevel level = ConsistencyLevel::kLazyCoarse;
  ProxyConfig proxy;
  CertifierConfig certifier;
  NetworkConfig network;
  /// Load balancer routing policy.
  RoutingPolicy routing = RoutingPolicy::kLeastActive;
  /// Load balancer admission control (defaults off = unbounded, the
  /// pre-flow-control behavior).
  AdmissionConfig admission;
  /// kBoundedStaleness only: how many versions a replica may lag behind
  /// V_system at transaction start.
  DbVersion staleness_bound = 100;
  /// Run a hot-standby certifier replicated via the state-machine
  /// approach (paper §IV fault-tolerance); CrashCertifier() then promotes
  /// it. Not supported together with the eager configuration.
  bool standby_certifier = false;
  /// Interval of the replicas' MVCC garbage collection (0 = off). Each
  /// sweep truncates row versions no active transaction can see.
  Duration gc_interval = 0;
  /// Seed for the replicas' stochastic service-time streams.
  uint64_t seed = 1;
  /// Partitioned certification (certifier.shard_lanes > 1 only): each
  /// replica's hosted-shard set — partial replication.  Empty outer
  /// vector, or an empty per-replica set, means "hosts every shard"
  /// (full replication).  Every shard must be hosted by at least one
  /// replica.
  std::vector<std::vector<ShardId>> hosted_shards;
  /// Explicit table -> shard assignment (empty = round-robin t mod K).
  std::vector<ShardId> table_to_shard;
  /// Observability: tracing + sampling knobs (everything off by default).
  obs::ObsConfig obs;
};

/// Populates one replica's database (schema + initial rows); must be
/// deterministic so all replicas start identical.
using SchemaBuilder = std::function<Status(Database*)>;

/// Registers the workload's prepared transactions against a replica's
/// catalog (all replicas share table ids by construction).
using TxnDefiner =
    std::function<Status(const Database&, sql::TransactionRegistry*)>;

/// The assembled replicated database system.
class ReplicatedSystem {
 public:
  using ClientCallback = std::function<void(const TxnResponse&)>;

  /// Builds the system: creates the replicas (each populated by
  /// `schema_builder`), prepares the transaction registry, persists the
  /// table-set catalog, and wires every channel with network latency.
  static Result<std::unique_ptr<ReplicatedSystem>> Create(
      runtime::Runtime* rt, const SystemConfig& config,
      const SchemaBuilder& schema_builder, const TxnDefiner& txn_definer);

  /// Client entry point: the request travels client -> load balancer with
  /// latency, then onwards.
  void Submit(TxnRequest request);

  /// Wires acknowledgments back to clients (delivered with latency).
  void SetClientCallback(ClientCallback cb) { client_cb_ = std::move(cb); }

  /// Optional: record every finished transaction for consistency checking.
  void SetHistory(History* history) { history_ = history; }

  /// Allocates a globally unique transaction id.
  TxnId NextTxnId() { return next_txn_id_++; }

  /// A client finished its session: the load balancer drops the session
  /// tracker entry (soft state — long-running systems would otherwise
  /// grow the per-session map by one entry per client forever).
  void EndSession(SessionId session) { load_balancer_->EndSession(session); }

  /// Crash-stop failure of one replica (paper's crash-recovery model):
  /// its in-flight transactions are failed back to their clients, the
  /// load balancer stops routing to it, the certifier stops sending it
  /// refreshes (and in eager mode stops waiting for it).
  void CrashReplica(ReplicaId replica);

  /// Recovery: the replica comes back, catches up from the certifier's
  /// durable log, and rejoins routing.
  void RecoverReplica(ReplicaId replica);

  /// True while `replica` is crashed.
  bool IsReplicaDown(ReplicaId replica) const;

  /// Network fault injection: cuts every link to and from `replica`
  /// (messages drop at the channel, counted per link).  The replica
  /// itself keeps running — unlike a crash its state survives — but the
  /// LB and certifier detect the silent peer one heartbeat round trip
  /// later and fail it out of the cluster.
  void PartitionReplica(ReplicaId replica);

  /// Heals the partition: links reopen, the replica catches up from the
  /// certifier's durable log (resubmitting transactions stuck awaiting
  /// decisions), and rejoins routing once current.
  void HealReplicaPartition(ReplicaId replica);

  /// True while `replica` is partitioned.
  bool IsReplicaPartitioned(ReplicaId replica) const {
    return partitioned_[static_cast<size_t>(replica)];
  }

  /// Stops the periodic GC daemon (used by the experiment harness so the
  /// event queue can drain at the end of a run).
  void StopGc() { gc_stopped_ = true; }

  /// Crash-stop failure of the primary certifier; the standby (which has
  /// processed the identical certification stream) is promoted, replicas
  /// catch up on any refreshes lost in flight, and transactions awaiting
  /// decisions are resubmitted. Requires `standby_certifier`.
  void CrashCertifier();

  /// True when the primary certifier has failed over to the standby.
  bool CertifierFailedOver() const { return certifier_failed_over_; }

  /// Crash-stop failure of the load balancer; a standby with empty soft
  /// state takes over, re-initialized conservatively from the certifier's
  /// current commit version so no consistency guarantee weakens (§IV:
  /// "a standby load balancer can be used for availability").
  void CrashLoadBalancer();

  /// How many times the load balancer has failed over.
  int load_balancer_failovers() const { return lb_failovers_; }

  runtime::Runtime* runtime() { return rt_; }
  const SystemConfig& config() const { return config_; }
  /// The system's observability layer (always present; collection is
  /// governed by SystemConfig::obs).
  obs::Observability* obs() { return obs_.get(); }
  LoadBalancer* load_balancer() { return load_balancer_.get(); }
  /// The single-stream certifier (null when shard_lanes > 1).
  Certifier* certifier() { return certifier_.get(); }
  /// The K-lane certifier (null unless shard_lanes > 1).
  ShardedCertifier* sharded_certifier() { return sharded_certifier_.get(); }
  bool sharded() const { return sharded_certifier_ != nullptr; }
  const ShardMap* shard_map() const { return shard_map_.get(); }
  Replica* replica(ReplicaId id) {
    return replicas_[static_cast<size_t>(id)].get();
  }
  int replica_count() const {
    return static_cast<int>(replicas_.size());
  }
  const sql::TransactionRegistry& registry() const { return registry_; }

  /// The certifier -> replica refresh channel (tests and benches read
  /// its per-link stats: messages, bytes, drops, redeliveries).
  net::Channel<RefreshBatch>* refresh_channel(ReplicaId replica) {
    return ch_refresh_[static_cast<size_t>(replica)].get();
  }
  /// The LB -> replica dispatch channel.
  net::Channel<RoutedRequest>* dispatch_channel(ReplicaId replica) {
    return ch_dispatch_[static_cast<size_t>(replica)].get();
  }
  /// One (shard, replica) refresh stream's channel (sharded mode; null
  /// when the replica does not host the shard).
  net::Channel<RefreshBatch>* shard_refresh_channel(ShardId shard,
                                                    ReplicaId replica) {
    return ch_shard_refresh_[static_cast<size_t>(replica)]
                            [static_cast<size_t>(shard)].get();
  }

 private:
  ReplicatedSystem(runtime::Runtime* rt, SystemConfig config);

  /// Builds every named channel of the cluster fabric (handlers read
  /// component pointers through `this`, so LB/certifier failovers keep
  /// speaking over the same channels).
  void BuildChannels();
  /// Flips the partitioned flag on every channel into/out of `replica`.
  void SetReplicaLinksPartitioned(ReplicaId replica, bool partitioned);
  void Wire();
  void RecordHistory(const TxnResponse& response, TimePoint ack_time);
  /// Appends a crash/recover/failover event for `component` ("replica",
  /// "certifier", "lb") to the event log.
  void EmitFaultEvent(obs::EventKind kind, const char* component,
                      ReplicaId replica);
  /// Schedules the next MVCC garbage-collection sweep.
  void ScheduleGc();
  /// Registers the component state gauges (queue depths, version lag,
  /// utilizations) polled by the sampler.
  void RegisterGauges();

  runtime::Runtime* rt_;
  SystemConfig config_;
  std::unique_ptr<obs::Observability> obs_;
  /// (Re)wires the active certifier's outward channels.
  void WireCertifier();
  /// (Re)wires the active load balancer's channels.
  void WireLoadBalancer();

  /// True when `replica` hosts `shard` (sharded mode).
  bool ReplicaHostsShard(ReplicaId replica, ShardId shard) const;

  sql::TransactionRegistry registry_;
  std::vector<std::unique_ptr<Replica>> replicas_;
  std::unique_ptr<Certifier> certifier_;
  /// Partitioned certification (shard_lanes > 1): the shard map and the
  /// K-lane certifier replacing `certifier_`.
  std::unique_ptr<ShardMap> shard_map_;
  std::unique_ptr<ShardedCertifier> sharded_certifier_;
  std::unique_ptr<Certifier> standby_certifier_;
  /// The crashed primary is kept allocated (muted) until the run ends:
  /// simulated work it had in flight may still complete, and a crashed
  /// node's effects must simply be silenced, not use-after-freed.
  std::unique_ptr<Certifier> dead_certifier_;
  bool certifier_failed_over_ = false;
  int lb_failovers_ = 0;
  std::unordered_map<TxnTypeId, std::vector<TableId>> table_sets_;
  std::unique_ptr<LoadBalancer> load_balancer_;
  ClientCallback client_cb_;
  History* history_ = nullptr;
  TxnId next_txn_id_ = 1;
  bool gc_stopped_ = false;

  // ---- The transport fabric (net/channel.h) ----
  // Endpoints: closing one (crash-stop) makes every channel pointed at
  // it drop at send.  Declared before the channels that reference them.
  std::unique_ptr<net::Endpoint> lb_endpoint_;
  std::unique_ptr<net::Endpoint> certifier_endpoint_;
  std::unique_ptr<net::Endpoint> client_endpoint_;
  std::vector<std::unique_ptr<net::Endpoint>> replica_endpoints_;
  // Directed channels, one per hop (client<->LB shared by all clients;
  // everything else per replica).
  std::unique_ptr<net::Channel<TxnRequest>> ch_client_lb_;
  std::unique_ptr<net::Channel<TxnResponse>> ch_lb_client_;
  std::vector<std::unique_ptr<net::Channel<RoutedRequest>>> ch_dispatch_;
  std::vector<std::unique_ptr<net::Channel<TxnResponse>>> ch_response_;
  std::vector<std::unique_ptr<net::Channel<WriteSet>>> ch_cert_request_;
  std::vector<std::unique_ptr<net::Channel<TxnId>>> ch_commit_notice_;
  std::vector<std::unique_ptr<net::Channel<CertDecision>>> ch_decision_;
  std::vector<std::unique_ptr<net::Channel<RefreshBatch>>> ch_refresh_;
  std::vector<std::unique_ptr<net::Channel<TxnId>>> ch_global_commit_;
  std::unique_ptr<net::Channel<WriteSet>> ch_forward_;
  /// Replica -> certifier refresh-credit returns (flow control).
  std::vector<std::unique_ptr<net::Channel<int>>> ch_credit_;
  /// Sharded mode: per-(replica, shard) refresh streams and credit
  /// returns; null entries where the replica does not host the shard.
  std::vector<std::vector<std::unique_ptr<net::Channel<RefreshBatch>>>>
      ch_shard_refresh_;
  std::vector<std::vector<std::unique_ptr<net::Channel<int>>>>
      ch_shard_credit_;
  std::vector<bool> partitioned_;
};

}  // namespace screp

#endif  // SCREP_REPLICATION_SYSTEM_H_
