#include "workload/realtime.h"

#include <utility>

#include "sql/statement.h"

namespace screp {

Status KvGridWorkload::BuildSchema(Database* db) const {
  SCREP_ASSIGN_OR_RETURN(
      TableId id,
      db->CreateTable(kTableName, Schema({{"id", ValueType::kInt64},
                                          {"val", ValueType::kInt64}})));
  for (int64_t key = 0; key < config_.rows; ++key) {
    SCREP_RETURN_NOT_OK(db->BulkLoad(id, Row{Value(key), Value(key)}));
  }
  return Status::OK();
}

std::string KvGridWorkload::TypeName(int reads, int updates) {
  return "kv_r" + std::to_string(reads) + "_u" + std::to_string(updates);
}

Status KvGridWorkload::DefineTransactions(
    const Database& db, sql::TransactionRegistry* registry) const {
  const std::string table(kTableName);
  for (int r = 0; r <= config_.max_reads; ++r) {
    for (int u = 0; u <= config_.max_updates; ++u) {
      if (r == 0 && u == 0) continue;
      sql::PreparedTransaction txn;
      txn.name = TypeName(r, u);
      for (int i = 0; i < r; ++i) {
        SCREP_ASSIGN_OR_RETURN(
            auto stmt, sql::PreparedStatement::Prepare(
                           db, "SELECT id, val FROM " + table +
                                   " WHERE id = ?"));
        txn.statements.push_back(std::move(stmt));
      }
      for (int i = 0; i < u; ++i) {
        SCREP_ASSIGN_OR_RETURN(
            auto stmt, sql::PreparedStatement::Prepare(
                           db, "UPDATE " + table +
                                   " SET val = ? WHERE id = ?"));
        txn.statements.push_back(std::move(stmt));
      }
      registry->Register(std::move(txn));
    }
  }
  return Status::OK();
}

Result<TxnTypeId> KvGridWorkload::TypeFor(
    const sql::TransactionRegistry& registry, int reads, int updates) const {
  if (reads < 0 || updates < 0 || reads > config_.max_reads ||
      updates > config_.max_updates || (reads == 0 && updates == 0)) {
    return Status::InvalidArgument(
        "no kv grid type for " + std::to_string(reads) + " reads / " +
        std::to_string(updates) + " updates (grid is " +
        std::to_string(config_.max_reads) + "x" +
        std::to_string(config_.max_updates) + ")");
  }
  return registry.Find(TypeName(reads, updates));
}

SystemConfig RealtimeSystemConfig(int replicas, ConsistencyLevel level) {
  SystemConfig config;
  config.replica_count = replicas;
  config.level = level;

  config.network.client_lb = net::LinkConfig(0);
  config.network.lb_replica = net::LinkConfig(0);
  config.network.replica_certifier = net::LinkConfig(0);
  config.network.refresh = net::LinkConfig(0);
  config.network.refresh.reliability = net::Reliability::kReliable;

  config.proxy.read_stmt_base = 0;
  config.proxy.update_stmt_base = 0;
  config.proxy.per_row_cost = 0;
  config.proxy.commit_cost = 0;
  config.proxy.refresh_base = 0;
  config.proxy.refresh_per_op = 0;
  config.proxy.stmt_round_trip = 0;

  config.certifier.certify_cpu_time = 0;
  config.certifier.log_force_time = 0;
  return config;
}

}  // namespace screp
