#include "workload/tpcw.h"

#include <optional>

namespace screp {

const char* TpcwMixName(TpcwMix mix) {
  switch (mix) {
    case TpcwMix::kBrowsing:
      return "browsing";
    case TpcwMix::kShopping:
      return "shopping";
    case TpcwMix::kOrdering:
      return "ordering";
  }
  return "?";
}

double TpcwUpdateFraction(TpcwMix mix) {
  switch (mix) {
    case TpcwMix::kBrowsing:
      return 0.05;
    case TpcwMix::kShopping:
      return 0.20;
    case TpcwMix::kOrdering:
      return 0.50;
  }
  return 0.0;
}

ProxyConfig TpcwProxyConfig() {
  ProxyConfig config;
  config.read_stmt_base = Millis(10.0);
  config.update_stmt_base = Millis(15.0);
  config.per_row_cost = Micros(50);
  config.commit_cost = Millis(2.5);
  config.refresh_base = Millis(2.0);
  config.refresh_per_op = Millis(8.0);
  return config;
}

int TpcwClientsPerReplica(TpcwMix mix) {
  switch (mix) {
    case TpcwMix::kBrowsing:
      return 10;
    case TpcwMix::kShopping:
      return 8;
    case TpcwMix::kOrdering:
      return 5;
  }
  return 0;
}

namespace {

using tpcw::kLinesPerCartKeySpan;
using tpcw::kLinesPerOrderKeySpan;

/// One client's emulated-browser state machine.
class TpcwGenerator : public TxnGenerator {
 public:
  TpcwGenerator(const TpcwScale& scale, TpcwMix mix,
                const sql::TransactionRegistry& registry, int client_id,
                Rng rng)
      : scale_(scale),
        mix_(mix),
        client_id_(client_id),
        rng_(rng),
        id_base_(static_cast<int64_t>(client_id + 1) *
                 tpcw::kClientKeyBase) {
    auto find = [&registry](const char* name) {
      Result<TxnTypeId> id = registry.Find(name);
      SCREP_CHECK_MSG(id.ok(), "missing TPC-W txn type " << name);
      return *id;
    };
    home_ = find(tpcw::kHome);
    product_detail_ = find(tpcw::kProductDetail);
    search_ = find(tpcw::kSearchBySubject);
    new_products_ = find(tpcw::kNewProducts);
    best_sellers_ = find(tpcw::kBestSellers);
    order_inquiry_ = find(tpcw::kOrderInquiry);
    shopping_cart_ = find(tpcw::kShoppingCart);
    cart_update_ = find(tpcw::kCartUpdate);
    registration_ = find(tpcw::kCustomerRegistration);
    buy_request_ = find(tpcw::kBuyRequest);
    buy_confirm_ = find(tpcw::kBuyConfirm);
    admin_update_ = find(tpcw::kAdminUpdate);
    my_customer_ = client_id % scale_.customers;
    last_order_ = tpcw::kInitialOrderBase +
                  static_cast<int64_t>(rng_.NextBounded(
                      static_cast<uint64_t>(scale_.initial_orders)));
  }

  TxnSpec Next() override {
    if (rng_.NextBool(TpcwUpdateFraction(mix_))) return NextUpdate();
    return NextRead();
  }

  void OnCommitted(const TxnSpec& spec) override {
    if (spec.type == shopping_cart_ && pending_cart_) {
      carts_.push_back(*pending_cart_);
      pending_cart_.reset();
    } else if (spec.type == buy_confirm_ && pending_order_ >= 0) {
      last_order_ = pending_order_;
      pending_order_ = -1;
      if (!carts_.empty()) carts_.pop_back();
    }
  }

 private:
  struct Cart {
    int64_t sc_id;
    int64_t item1, item2;
    int64_t qty1, qty2;
  };

  int64_t RandomItem() {
    return static_cast<int64_t>(
        rng_.NextBounded(static_cast<uint64_t>(scale_.items)));
  }
  int64_t RandomCustomer() {
    return static_cast<int64_t>(
        rng_.NextBounded(static_cast<uint64_t>(scale_.customers)));
  }
  int64_t RandomSubject() {
    return static_cast<int64_t>(
        rng_.NextBounded(static_cast<uint64_t>(scale_.subjects)));
  }
  int64_t NextDate() { return ++date_counter_; }

  TxnSpec NextRead() {
    const double r = rng_.NextDouble();
    TxnSpec spec;
    if (r < 0.30) {
      spec.type = home_;
      spec.params = {{Value(my_customer_)},
                     {Value(RandomItem())},
                     {Value(RandomItem())}};
    } else if (r < 0.55) {
      spec.type = product_detail_;
      spec.params = {{Value(RandomItem())},
                     {Value(static_cast<int64_t>(rng_.NextBounded(
                         static_cast<uint64_t>(tpcw::AuthorCount(scale_)))))}};
    } else if (r < 0.70) {
      spec.type = search_;
      spec.params = {{Value(RandomSubject())}};
    } else if (r < 0.82) {
      spec.type = new_products_;
      spec.params = {{Value(RandomSubject())}};
    } else if (r < 0.92) {
      spec.type = best_sellers_;
      spec.params = {{Value(RandomSubject())}};
    } else {
      spec.type = order_inquiry_;
      const int64_t o = last_order_;
      spec.params = {{Value(my_customer_)},
                     {Value(o)},
                     {Value(o * kLinesPerOrderKeySpan),
                      Value(o * kLinesPerOrderKeySpan +
                            kLinesPerOrderKeySpan - 1)}};
    }
    return spec;
  }

  TxnSpec NextUpdate() {
    const double r = rng_.NextDouble();
    if (r < 0.35) return MakeShoppingCart();
    if (r < 0.55) {
      if (carts_.empty()) return MakeShoppingCart();
      return MakeCartUpdate();
    }
    if (r < 0.70) {
      if (carts_.empty()) return MakeShoppingCart();
      return MakeBuyRequest();
    }
    if (r < 0.85) {
      if (carts_.empty()) return MakeShoppingCart();
      return MakeBuyConfirm();
    }
    if (r < 0.95) return MakeRegistration();
    return MakeAdminUpdate();
  }

  TxnSpec MakeShoppingCart() {
    Cart cart;
    cart.sc_id = id_base_ + cart_counter_++;
    cart.item1 = RandomItem();
    cart.item2 = RandomItem();
    cart.qty1 = rng_.NextInRange(1, 4);
    cart.qty2 = rng_.NextInRange(1, 4);
    pending_cart_ = cart;
    const int64_t base = cart.sc_id * kLinesPerCartKeySpan;
    TxnSpec spec;
    spec.type = shopping_cart_;
    spec.params = {
        {Value(cart.item1)},
        {Value(cart.item2)},
        {Value(cart.sc_id), Value(NextDate()), Value(0.0)},
        {Value(base + 0), Value(cart.sc_id), Value(cart.item1),
         Value(cart.qty1)},
        {Value(base + 1), Value(cart.sc_id), Value(cart.item2),
         Value(cart.qty2)},
        {Value(25.0), Value(cart.sc_id)},
    };
    return spec;
  }

  TxnSpec MakeCartUpdate() {
    const Cart& cart = carts_.back();
    TxnSpec spec;
    spec.type = cart_update_;
    spec.params = {
        {Value(cart.item1)},
        {Value(rng_.NextInRange(1, 9)),
         Value(cart.sc_id * kLinesPerCartKeySpan)},
        {Value(5.0), Value(NextDate()), Value(cart.sc_id)},
    };
    return spec;
  }

  TxnSpec MakeBuyRequest() {
    const Cart& cart = carts_.back();
    const int64_t base = cart.sc_id * kLinesPerCartKeySpan;
    TxnSpec spec;
    spec.type = buy_request_;
    spec.params = {
        {Value(my_customer_)},
        {Value(base), Value(base + kLinesPerCartKeySpan - 1)},
        {Value(NextDate()), Value(cart.sc_id)},
    };
    return spec;
  }

  TxnSpec MakeBuyConfirm() {
    const Cart& cart = carts_.back();
    const int64_t o_id = id_base_ + order_counter_++;
    pending_order_ = o_id;
    const int64_t cart_base = cart.sc_id * kLinesPerCartKeySpan;
    const double subtotal =
        25.0 + static_cast<double>(rng_.NextBounded(10000)) / 100.0;
    TxnSpec spec;
    spec.type = buy_confirm_;
    spec.params = {
        {Value(cart_base), Value(cart_base + kLinesPerCartKeySpan - 1)},
        {Value(o_id), Value(my_customer_), Value(NextDate()),
         Value(subtotal), Value(subtotal * 0.08), Value(subtotal * 1.08),
         Value("PENDING")},
        {Value(o_id * kLinesPerOrderKeySpan + 0), Value(o_id),
         Value(cart.item1), Value(cart.qty1), Value(0.0)},
        {Value(o_id * kLinesPerOrderKeySpan + 1), Value(o_id),
         Value(cart.item2), Value(cart.qty2), Value(0.0)},
        {Value(cart.qty1), Value(cart.qty1), Value(cart.item1)},
        {Value(cart.qty2), Value(cart.qty2), Value(cart.item2)},
        {Value(o_id), Value("VISA"), Value(subtotal * 1.08),
         Value(NextDate())},
        {Value(subtotal * 1.08), Value(subtotal * 1.08),
         Value(my_customer_)},
        {Value(cart_base), Value(cart_base + kLinesPerCartKeySpan - 1)},
    };
    return spec;
  }

  TxnSpec MakeRegistration() {
    const int64_t addr_id = id_base_ + address_counter_++;
    const int64_t c_id = id_base_ + customer_counter_++;
    TxnSpec spec;
    spec.type = registration_;
    spec.params = {
        {Value(addr_id), Value("street" + std::to_string(addr_id)),
         Value("city"), Value("zip"),
         Value(static_cast<int64_t>(
             rng_.NextBounded(static_cast<uint64_t>(scale_.countries))))},
        {Value(c_id), Value("user" + std::to_string(c_id)), Value("new"),
         Value("customer"), Value(addr_id), Value(0.0), Value(0.0),
         Value(NextDate()), Value(int64_t{0}), Value(0.05)},
    };
    return spec;
  }

  TxnSpec MakeAdminUpdate() {
    const int64_t item = RandomItem();
    TxnSpec spec;
    spec.type = admin_update_;
    spec.params = {
        {Value(item)},
        {Value(5.0 + static_cast<double>(rng_.NextBounded(5000)) / 100.0),
         Value(NextDate()), Value(RandomItem()), Value(item)},
    };
    return spec;
  }

  TpcwScale scale_;
  TpcwMix mix_;
  int client_id_;
  Rng rng_;
  int64_t id_base_;

  TxnTypeId home_, product_detail_, search_, new_products_, best_sellers_,
      order_inquiry_, shopping_cart_, cart_update_, registration_,
      buy_request_, buy_confirm_, admin_update_;

  int64_t my_customer_ = 0;
  int64_t last_order_ = -1;
  int64_t date_counter_ = 0;
  int64_t cart_counter_ = 0;
  int64_t order_counter_ = 0;
  int64_t address_counter_ = 0;
  int64_t customer_counter_ = 0;

  std::vector<Cart> carts_;
  std::optional<Cart> pending_cart_;
  int64_t pending_order_ = -1;
};

}  // namespace

Status TpcwWorkload::BuildSchema(Database* db) const {
  return BuildTpcwSchema(db, scale_);
}

Status TpcwWorkload::DefineTransactions(
    const Database& db, sql::TransactionRegistry* registry) const {
  return tpcw::DefineTpcwTransactions(db, registry);
}

std::unique_ptr<TxnGenerator> TpcwWorkload::CreateGenerator(
    const sql::TransactionRegistry& registry, int client_id,
    Rng rng) const {
  return std::make_unique<TpcwGenerator>(scale_, mix_, registry, client_id,
                                         rng);
}

}  // namespace screp
