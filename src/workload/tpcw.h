// The TPC-W workload: the three standard mixes over the web interactions
// of tpcw_transactions.h, driven by per-client emulated-browser state
// (shopping carts, last order), exactly the shape of the paper's §V-C
// evaluation.

#ifndef SCREP_WORKLOAD_TPCW_H_
#define SCREP_WORKLOAD_TPCW_H_

#include "workload/client.h"
#include "workload/tpcw_schema.h"
#include "workload/tpcw_transactions.h"

namespace screp {

/// The three TPC-W transaction mixes (fraction of update transactions).
enum class TpcwMix {
  kBrowsing,  ///< 5% updates
  kShopping,  ///< 20% updates
  kOrdering,  ///< 50% updates
};

const char* TpcwMixName(TpcwMix mix);
double TpcwUpdateFraction(TpcwMix mix);
/// Clients per replica under the paper's scaled-load experiments
/// (browsing 10, shopping 8, ordering 5).
int TpcwClientsPerReplica(TpcwMix mix);

/// Replica service-time profile for TPC-W experiments: web-interaction
/// statements are an order of magnitude heavier than the micro-benchmark's
/// single-record accesses (each page runs multi-row queries through the
/// app server), which is what pushes the testbed toward saturation — the
/// regime the paper's Figures 5-7 are measured in.
ProxyConfig TpcwProxyConfig();

/// The TPC-W workload for one mix.
class TpcwWorkload : public Workload {
 public:
  TpcwWorkload(TpcwScale scale, TpcwMix mix) : scale_(scale), mix_(mix) {}

  std::string name() const override {
    return std::string("tpcw-") + TpcwMixName(mix_);
  }
  Status BuildSchema(Database* db) const override;
  Status DefineTransactions(const Database& db,
                            sql::TransactionRegistry* registry) const
      override;
  std::unique_ptr<TxnGenerator> CreateGenerator(
      const sql::TransactionRegistry& registry, int client_id,
      Rng rng) const override;

  const TpcwScale& scale() const { return scale_; }
  TpcwMix mix() const { return mix_; }

 private:
  TpcwScale scale_;
  TpcwMix mix_;
};

}  // namespace screp

#endif  // SCREP_WORKLOAD_TPCW_H_
