// Experiment metrics: throughput, response time, the paper's per-stage
// latency breakdown, and the synchronization-delay measure of Fig. 6.

#ifndef SCREP_WORKLOAD_METRICS_H_
#define SCREP_WORKLOAD_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/sim_time.h"
#include "common/stats.h"
#include "replication/message.h"

namespace screp {

/// Collects per-transaction measurements inside a measurement window.
class MetricsCollector {
 public:
  /// Observations before `measure_from` (warm-up) are discarded.
  explicit MetricsCollector(TimePoint measure_from)
      : measure_from_(measure_from) {}

  /// Records a finished transaction; `now` is the client-side
  /// acknowledgment time, `eager` selects which stage counts as the
  /// synchronization delay (global for ESC, version otherwise).
  void Record(const TxnResponse& response, TimePoint now, bool eager);

  /// Ends the window (needed before computing throughput).
  void Finish(TimePoint now) { measure_until_ = now; }

  // -- Aggregates (valid after Finish) --

  /// Committed transactions per second of virtual time.
  double Throughput() const;
  /// Mean client response time in ms (committed transactions).
  double MeanResponseMs() const {
    return ToMillis(static_cast<Duration>(response_.mean()));
  }
  double P99ResponseMs() const { return response_hist_.Percentile(0.99) / 1e3; }
  /// Mean synchronization delay in ms (Fig. 6 metric).
  double MeanSyncDelayMs() const {
    return ToMillis(static_cast<Duration>(sync_delay_.mean()));
  }

  int64_t committed() const { return committed_; }
  int64_t committed_updates() const { return committed_updates_; }
  int64_t committed_readonly() const {
    return committed_ - committed_updates_;
  }
  int64_t cert_aborts() const { return cert_aborts_; }
  int64_t early_aborts() const { return early_aborts_; }
  int64_t exec_errors() const { return exec_errors_; }
  int64_t replica_failures() const { return replica_failures_; }
  int64_t overloaded() const { return overloaded_; }

  /// Mean of one stage in ms over committed transactions of the given
  /// class ("update" includes only update transactions).
  const StatAccumulator& version_stage() const { return version_; }
  const StatAccumulator& queries_stage() const { return queries_; }
  const StatAccumulator& certify_stage() const { return certify_; }
  const StatAccumulator& sync_stage() const { return sync_; }
  const StatAccumulator& commit_stage() const { return commit_; }
  const StatAccumulator& global_stage() const { return global_; }

  const StatAccumulator& response_stat() const { return response_; }
  const Histogram& response_histogram() const { return response_hist_; }

  /// Enables per-interval throughput/latency buckets (timeline view —
  /// e.g. to watch throughput dip and recover around a replica crash).
  void EnableTimeline(Duration bucket_width);

  /// One timeline bucket.
  struct TimelineBucket {
    int64_t committed = 0;
    int64_t failures = 0;  // aborts + replica failures
    double total_response_us = 0;

    double MeanResponseMs() const {
      return committed > 0 ? total_response_us / committed / 1e3 : 0.0;
    }
  };

  /// Buckets from time 0 in EnableTimeline() widths (empty if disabled).
  const std::vector<TimelineBucket>& timeline() const { return timeline_; }
  Duration timeline_bucket_width() const { return timeline_bucket_width_; }

  /// Multi-line human-readable summary.
  std::string Summary() const;

 private:
  /// Bucket containing `now`, growing the timeline as needed; nullptr
  /// when the timeline is disabled.
  TimelineBucket* TimelineBucketFor(TimePoint now);

  TimePoint measure_from_;
  TimePoint measure_until_ = 0;

  int64_t committed_ = 0;
  int64_t committed_updates_ = 0;
  int64_t cert_aborts_ = 0;
  int64_t early_aborts_ = 0;
  int64_t exec_errors_ = 0;
  int64_t replica_failures_ = 0;
  int64_t overloaded_ = 0;

  StatAccumulator response_;
  Histogram response_hist_;
  StatAccumulator sync_delay_;
  StatAccumulator version_, queries_, certify_, sync_, commit_, global_;

  Duration timeline_bucket_width_ = 0;
  std::vector<TimelineBucket> timeline_;
};

}  // namespace screp

#endif  // SCREP_WORKLOAD_METRICS_H_
