// The TPC-W web interactions as prepared transactions.
//
// Each interaction is a fixed sequence of prepared statements, which is
// exactly the "automated environment" shape the fine-grained scheme
// exploits: the table-set of every interaction is statically known.
// Secondary-index accesses of a real deployment (subject, pub-date,
// best-seller indexes) are emulated as primary-key ranges — see
// tpcw_schema.h's subject partitioning.

#ifndef SCREP_WORKLOAD_TPCW_TRANSACTIONS_H_
#define SCREP_WORKLOAD_TPCW_TRANSACTIONS_H_

#include "common/status.h"
#include "sql/table_set.h"
#include "storage/database.h"

namespace screp::tpcw {

/// Names of the registered transaction types.
inline constexpr const char* kHome = "home";
inline constexpr const char* kProductDetail = "product_detail";
inline constexpr const char* kSearchBySubject = "search_by_subject";
inline constexpr const char* kNewProducts = "new_products";
inline constexpr const char* kBestSellers = "best_sellers";
inline constexpr const char* kOrderInquiry = "order_inquiry";
inline constexpr const char* kShoppingCart = "shopping_cart";
inline constexpr const char* kCartUpdate = "cart_update";
inline constexpr const char* kCustomerRegistration = "customer_registration";
inline constexpr const char* kBuyRequest = "buy_request";
inline constexpr const char* kBuyConfirm = "buy_confirm";
inline constexpr const char* kAdminUpdate = "admin_update";

/// Registers all TPC-W transaction types against `db`'s catalog.
Status DefineTpcwTransactions(const Database& db,
                              sql::TransactionRegistry* registry);

}  // namespace screp::tpcw

#endif  // SCREP_WORKLOAD_TPCW_TRANSACTIONS_H_
