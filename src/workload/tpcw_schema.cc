#include "workload/tpcw_schema.h"

#include "common/rng.h"

namespace screp {

namespace tpcw {

void SubjectRange(const TpcwScale& s, int subject, int64_t* lo,
                  int64_t* hi) {
  const int span = s.items / s.subjects;
  *lo = static_cast<int64_t>(subject) * span;
  *hi = subject == s.subjects - 1 ? s.items - 1 : *lo + span - 1;
}

}  // namespace tpcw

Status BuildTpcwSchema(Database* db, const TpcwScale& scale) {
  // A fixed seed keeps the population identical on every replica.
  Rng rng(0x7c9a11dULL);

  SCREP_ASSIGN_OR_RETURN(
      TableId country,
      db->CreateTable("country", Schema({{"co_id", ValueType::kInt64},
                                         {"co_name", ValueType::kString},
                                         {"co_exchange", ValueType::kDouble}})));
  for (int64_t i = 0; i < scale.countries; ++i) {
    SCREP_RETURN_NOT_OK(db->BulkLoad(
        country, Row{Value(i), Value("country" + std::to_string(i)),
                     Value(0.5 + 0.01 * static_cast<double>(i))}));
  }

  SCREP_ASSIGN_OR_RETURN(
      TableId author,
      db->CreateTable("author", Schema({{"a_id", ValueType::kInt64},
                                        {"a_fname", ValueType::kString},
                                        {"a_lname", ValueType::kString}})));
  const int authors = tpcw::AuthorCount(scale);
  for (int64_t i = 0; i < authors; ++i) {
    SCREP_RETURN_NOT_OK(db->BulkLoad(
        author, Row{Value(i), Value("afirst" + std::to_string(i)),
                    Value("alast" + std::to_string(i))}));
  }

  SCREP_ASSIGN_OR_RETURN(
      TableId address,
      db->CreateTable("address", Schema({{"addr_id", ValueType::kInt64},
                                         {"addr_street", ValueType::kString},
                                         {"addr_city", ValueType::kString},
                                         {"addr_zip", ValueType::kString},
                                         {"addr_co_id", ValueType::kInt64}})));
  const int addresses = tpcw::AddressCount(scale);
  for (int64_t i = 0; i < addresses; ++i) {
    SCREP_RETURN_NOT_OK(db->BulkLoad(
        address,
        Row{Value(i), Value("street" + std::to_string(i)),
            Value("city" + std::to_string(i % 500)),
            Value("zip" + std::to_string(i % 10000)),
            Value(static_cast<int64_t>(
                rng.NextBounded(static_cast<uint64_t>(scale.countries))))}));
  }

  SCREP_ASSIGN_OR_RETURN(
      TableId customer,
      db->CreateTable(
          "customer", Schema({{"c_id", ValueType::kInt64},
                              {"c_uname", ValueType::kString},
                              {"c_fname", ValueType::kString},
                              {"c_lname", ValueType::kString},
                              {"c_addr_id", ValueType::kInt64},
                              {"c_balance", ValueType::kDouble},
                              {"c_ytd_pmt", ValueType::kDouble},
                              {"c_last_login", ValueType::kInt64},
                              {"c_expiration", ValueType::kInt64},
                              {"c_discount", ValueType::kDouble}})));
  for (int64_t i = 0; i < scale.customers; ++i) {
    SCREP_RETURN_NOT_OK(db->BulkLoad(
        customer,
        Row{Value(i), Value("user" + std::to_string(i)),
            Value("first" + std::to_string(i)),
            Value("last" + std::to_string(i)), Value(2 * i),
            Value(0.0), Value(0.0), Value(int64_t{0}), Value(int64_t{0}),
            Value(0.01 * static_cast<double>(rng.NextBounded(50)))}));
  }

  SCREP_ASSIGN_OR_RETURN(
      TableId item,
      db->CreateTable("item", Schema({{"i_id", ValueType::kInt64},
                                      {"i_title", ValueType::kString},
                                      {"i_a_id", ValueType::kInt64},
                                      {"i_pub_date", ValueType::kInt64},
                                      {"i_subject", ValueType::kInt64},
                                      {"i_cost", ValueType::kDouble},
                                      {"i_stock", ValueType::kInt64},
                                      {"i_total_sold", ValueType::kInt64},
                                      {"i_related", ValueType::kInt64}})));
  for (int64_t i = 0; i < scale.items; ++i) {
    const int span = scale.items / scale.subjects;
    const int64_t subject = std::min<int64_t>(i / span, scale.subjects - 1);
    SCREP_RETURN_NOT_OK(db->BulkLoad(
        item,
        Row{Value(i), Value("title" + std::to_string(i)),
            Value(static_cast<int64_t>(
                rng.NextBounded(static_cast<uint64_t>(authors)))),
            Value(static_cast<int64_t>(rng.NextBounded(3650))),
            Value(subject),
            Value(5.0 + 0.25 * static_cast<double>(rng.NextBounded(200))),
            Value(static_cast<int64_t>(10 + rng.NextBounded(90))),
            Value(static_cast<int64_t>(rng.NextBounded(1000))),
            Value(static_cast<int64_t>(
                rng.NextBounded(static_cast<uint64_t>(scale.items))))}));
  }

  SCREP_ASSIGN_OR_RETURN(
      TableId orders,
      db->CreateTable("orders", Schema({{"o_id", ValueType::kInt64},
                                        {"o_c_id", ValueType::kInt64},
                                        {"o_date", ValueType::kInt64},
                                        {"o_subtotal", ValueType::kDouble},
                                        {"o_tax", ValueType::kDouble},
                                        {"o_total", ValueType::kDouble},
                                        {"o_status", ValueType::kString}})));
  SCREP_ASSIGN_OR_RETURN(
      TableId order_line,
      db->CreateTable("order_line",
                      Schema({{"ol_id", ValueType::kInt64},
                              {"ol_o_id", ValueType::kInt64},
                              {"ol_i_id", ValueType::kInt64},
                              {"ol_qty", ValueType::kInt64},
                              {"ol_discount", ValueType::kDouble}})));
  for (int64_t n = 0; n < scale.initial_orders; ++n) {
    const int64_t o_id = tpcw::kInitialOrderBase + n;
    const int64_t c_id = static_cast<int64_t>(
        rng.NextBounded(static_cast<uint64_t>(scale.customers)));
    const double subtotal =
        10.0 + static_cast<double>(rng.NextBounded(20000)) / 100.0;
    SCREP_RETURN_NOT_OK(db->BulkLoad(
        orders, Row{Value(o_id), Value(c_id),
                    Value(static_cast<int64_t>(rng.NextBounded(365))),
                    Value(subtotal), Value(subtotal * 0.08),
                    Value(subtotal * 1.08), Value("SHIPPED")}));
    for (int64_t l = 0; l < scale.lines_per_order; ++l) {
      SCREP_RETURN_NOT_OK(db->BulkLoad(
          order_line,
          Row{Value(o_id * tpcw::kLinesPerOrderKeySpan + l), Value(o_id),
              Value(static_cast<int64_t>(
                  rng.NextBounded(static_cast<uint64_t>(scale.items)))),
              Value(static_cast<int64_t>(1 + rng.NextBounded(5))),
              Value(0.0)}));
    }
  }

  SCREP_ASSIGN_OR_RETURN(
      TableId cc_xacts,
      db->CreateTable("cc_xacts", Schema({{"cx_o_id", ValueType::kInt64},
                                          {"cx_type", ValueType::kString},
                                          {"cx_amount", ValueType::kDouble},
                                          {"cx_auth_date", ValueType::kInt64}})));
  (void)cc_xacts;

  SCREP_ASSIGN_OR_RETURN(
      TableId cart,
      db->CreateTable("shopping_cart",
                      Schema({{"sc_id", ValueType::kInt64},
                              {"sc_date", ValueType::kInt64},
                              {"sc_total", ValueType::kDouble}})));
  (void)cart;

  SCREP_ASSIGN_OR_RETURN(
      TableId cart_line,
      db->CreateTable("shopping_cart_line",
                      Schema({{"scl_id", ValueType::kInt64},
                              {"scl_sc_id", ValueType::kInt64},
                              {"scl_i_id", ValueType::kInt64},
                              {"scl_qty", ValueType::kInt64}})));
  (void)cart_line;

  // Secondary indexes a real deployment would have: subject browsing and
  // login-by-username (backfilled over the population above).
  SCREP_RETURN_NOT_OK(db->CreateIndex(item, "i_subject"));
  SCREP_RETURN_NOT_OK(db->CreateIndex(customer, "c_uname"));

  return Status::OK();
}

}  // namespace screp
