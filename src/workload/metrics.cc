#include "workload/metrics.h"

#include <cstdio>

#include "common/logging.h"

namespace screp {

void MetricsCollector::EnableTimeline(Duration bucket_width) {
  timeline_bucket_width_ = bucket_width;
}

MetricsCollector::TimelineBucket* MetricsCollector::TimelineBucketFor(
    TimePoint now) {
  if (timeline_bucket_width_ <= 0) return nullptr;
  const size_t index =
      static_cast<size_t>(now / timeline_bucket_width_);
  if (timeline_.size() <= index) timeline_.resize(index + 1);
  return &timeline_[index];
}

void MetricsCollector::Record(const TxnResponse& response, TimePoint now,
                              bool eager) {
  TimelineBucket* bucket = TimelineBucketFor(now);
  if (bucket != nullptr) {
    if (response.outcome == TxnOutcome::kCommitted) {
      ++bucket->committed;
      bucket->total_response_us +=
          static_cast<double>(now - response.submit_time);
    } else {
      ++bucket->failures;
    }
  }
  if (now < measure_from_) return;
  switch (response.outcome) {
    case TxnOutcome::kCertificationAbort:
      ++cert_aborts_;
      return;
    case TxnOutcome::kEarlyAbort:
      ++early_aborts_;
      return;
    case TxnOutcome::kExecutionError:
      ++exec_errors_;
      return;
    case TxnOutcome::kReplicaFailure:
      ++replica_failures_;
      return;
    case TxnOutcome::kOverloaded:
      ++overloaded_;
      return;
    case TxnOutcome::kCommitted:
      break;
  }
  ++committed_;
  if (!response.read_only) ++committed_updates_;

  const Duration rt = now - response.submit_time;
  response_.Add(static_cast<double>(rt));
  response_hist_.Add(static_cast<double>(rt));

  const StageTimes& s = response.stages;
  version_.Add(static_cast<double>(s.version));
  queries_.Add(static_cast<double>(s.queries));
  if (!response.read_only) {
    certify_.Add(static_cast<double>(s.certify));
    sync_.Add(static_cast<double>(s.sync));
  }
  commit_.Add(static_cast<double>(s.commit));
  if (!response.read_only && eager) {
    global_.Add(static_cast<double>(s.global));
  }
  // Fig. 6's "synchronization delay": the global commit delay under ESC
  // (updates only), the synchronization start delay otherwise.
  if (eager) {
    if (!response.read_only) {
      sync_delay_.Add(static_cast<double>(s.global));
    }
  } else {
    sync_delay_.Add(static_cast<double>(s.version));
  }
}

double MetricsCollector::Throughput() const {
  const Duration window = measure_until_ - measure_from_;
  if (window <= 0) {
    SCREP_LOG(kWarn) << "[metrics] zero-length measurement window ("
                     << measure_from_ << ".." << measure_until_
                     << " us): Throughput() is 0 — was Finish() called "
                        "before the measurement interval ended?";
    return 0.0;
  }
  return static_cast<double>(committed_) / ToSeconds(window);
}

std::string MetricsCollector::Summary() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "committed=%lld (updates=%lld) aborts: cert=%lld early=%lld "
      "err=%lld\n"
      "throughput=%.1f TPS  response: mean=%.2fms p99=%.2fms  "
      "sync-delay=%.2fms\n"
      "stages(ms): version=%.2f queries=%.2f certify=%.2f sync=%.2f "
      "commit=%.2f global=%.2f",
      static_cast<long long>(committed_),
      static_cast<long long>(committed_updates_),
      static_cast<long long>(cert_aborts_),
      static_cast<long long>(early_aborts_),
      static_cast<long long>(exec_errors_), Throughput(), MeanResponseMs(),
      P99ResponseMs(), MeanSyncDelayMs(),
      ToMillis(static_cast<Duration>(version_.mean())),
      ToMillis(static_cast<Duration>(queries_.mean())),
      ToMillis(static_cast<Duration>(certify_.mean())),
      ToMillis(static_cast<Duration>(sync_.mean())),
      ToMillis(static_cast<Duration>(commit_.mean())),
      ToMillis(static_cast<Duration>(global_.mean())));
  return buf;
}

}  // namespace screp
