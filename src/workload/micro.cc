#include "workload/micro.h"

namespace screp {

namespace {

/// Generator: uniform table, uniform key, Bernoulli update choice.
class MicroGenerator : public TxnGenerator {
 public:
  MicroGenerator(const MicroConfig& config, std::vector<TxnTypeId> reads,
                 std::vector<TxnTypeId> updates, Rng rng)
      : config_(config),
        read_types_(std::move(reads)),
        update_types_(std::move(updates)),
        rng_(rng) {}

  TxnSpec Next() override {
    const int table = static_cast<int>(
        rng_.NextBounded(static_cast<uint64_t>(config_.table_count)));
    const int64_t key =
        rng_.NextInRange(0, config_.rows_per_table - 1);
    TxnSpec spec;
    if (rng_.NextBool(config_.update_fraction)) {
      spec.type = update_types_[static_cast<size_t>(table)];
      // UPDATE ... SET val = val + ? WHERE id = ?
      spec.params = {{Value(rng_.NextInRange(1, 100)), Value(key)}};
    } else {
      spec.type = read_types_[static_cast<size_t>(table)];
      // SELECT ... WHERE id = ?
      spec.params = {{Value(key)}};
    }
    return spec;
  }

 private:
  MicroConfig config_;
  std::vector<TxnTypeId> read_types_;
  std::vector<TxnTypeId> update_types_;
  Rng rng_;
};

}  // namespace

std::string MicroWorkload::TableName(int i) {
  return "item" + std::to_string(i);
}

Status MicroWorkload::BuildSchema(Database* db) const {
  const std::string pad(static_cast<size_t>(config_.pad_chars), 'x');
  for (int t = 0; t < config_.table_count; ++t) {
    SCREP_ASSIGN_OR_RETURN(
        TableId id, db->CreateTable(TableName(t),
                                    Schema({{"id", ValueType::kInt64},
                                            {"val", ValueType::kInt64},
                                            {"pad", ValueType::kString}})));
    for (int64_t key = 0; key < config_.rows_per_table; ++key) {
      SCREP_RETURN_NOT_OK(
          db->BulkLoad(id, Row{Value(key), Value(key % 997), Value(pad)}));
    }
  }
  return Status::OK();
}

Status MicroWorkload::DefineTransactions(
    const Database& db, sql::TransactionRegistry* registry) const {
  for (int t = 0; t < config_.table_count; ++t) {
    const std::string table = TableName(t);
    {
      sql::PreparedTransaction txn;
      txn.name = "read_" + table;
      SCREP_ASSIGN_OR_RETURN(
          auto stmt,
          sql::PreparedStatement::Prepare(
              db, "SELECT id, val, pad FROM " + table + " WHERE id = ?"));
      txn.statements.push_back(std::move(stmt));
      registry->Register(std::move(txn));
    }
    {
      sql::PreparedTransaction txn;
      txn.name = "update_" + table;
      SCREP_ASSIGN_OR_RETURN(
          auto stmt,
          sql::PreparedStatement::Prepare(
              db, "UPDATE " + table + " SET val = val + ? WHERE id = ?"));
      txn.statements.push_back(std::move(stmt));
      registry->Register(std::move(txn));
    }
  }
  return Status::OK();
}

std::unique_ptr<TxnGenerator> MicroWorkload::CreateGenerator(
    const sql::TransactionRegistry& registry, int client_id,
    Rng rng) const {
  (void)client_id;
  std::vector<TxnTypeId> reads;
  std::vector<TxnTypeId> updates;
  for (int t = 0; t < config_.table_count; ++t) {
    const std::string table = TableName(t);
    Result<TxnTypeId> read_id = registry.Find("read_" + table);
    Result<TxnTypeId> update_id = registry.Find("update_" + table);
    SCREP_CHECK(read_id.ok() && update_id.ok());
    reads.push_back(*read_id);
    updates.push_back(*update_id);
  }
  return std::make_unique<MicroGenerator>(config_, std::move(reads),
                                          std::move(updates), rng);
}

}  // namespace screp
