#include "workload/tpcw_transactions.h"

namespace screp::tpcw {

namespace {

Status Define(const Database& db, sql::TransactionRegistry* registry,
              const char* name, std::initializer_list<const char*> texts) {
  sql::PreparedTransaction txn;
  txn.name = name;
  for (const char* text : texts) {
    SCREP_ASSIGN_OR_RETURN(auto stmt,
                           sql::PreparedStatement::Prepare(db, text));
    txn.statements.push_back(std::move(stmt));
  }
  registry->Register(std::move(txn));
  return Status::OK();
}

}  // namespace

Status DefineTpcwTransactions(const Database& db,
                              sql::TransactionRegistry* registry) {
  // ---- Read-only interactions -------------------------------------------

  // Home page: greet the customer, show two promotional items.
  SCREP_RETURN_NOT_OK(Define(
      db, registry, kHome,
      {"SELECT c_fname, c_lname, c_discount FROM customer WHERE c_id = ?",
       "SELECT i_id, i_title, i_cost FROM item WHERE i_id = ?",
       "SELECT i_id, i_title, i_cost FROM item WHERE i_id = ?"}));

  // Product detail: the item plus its author.
  SCREP_RETURN_NOT_OK(Define(
      db, registry, kProductDetail,
      {"SELECT i_id, i_title, i_a_id, i_pub_date, i_cost, i_stock FROM item "
       "WHERE i_id = ?",
       "SELECT a_id, a_fname, a_lname FROM author WHERE a_id = ?"}));

  // Search by subject, served by the secondary index on i_subject.
  SCREP_RETURN_NOT_OK(Define(
      db, registry, kSearchBySubject,
      {"SELECT i_id, i_title, i_cost FROM item WHERE i_subject = ? "
       "ORDER BY i_title ASC LIMIT 20"}));

  // New products in a subject, newest first.
  SCREP_RETURN_NOT_OK(Define(
      db, registry, kNewProducts,
      {"SELECT i_id, i_title, i_pub_date FROM item WHERE i_subject = ? "
       "ORDER BY i_pub_date DESC LIMIT 20"}));

  // Best sellers in a subject by units sold.
  SCREP_RETURN_NOT_OK(Define(
      db, registry, kBestSellers,
      {"SELECT i_id, i_title, i_total_sold FROM item WHERE i_subject = ? "
       "ORDER BY i_total_sold DESC LIMIT 20"}));

  // Order inquiry / display: the customer's most recent order.
  SCREP_RETURN_NOT_OK(Define(
      db, registry, kOrderInquiry,
      {"SELECT c_id, c_fname, c_lname, c_balance FROM customer WHERE c_id "
       "= ?",
       "SELECT o_id, o_date, o_total, o_status FROM orders WHERE o_id = ?",
       "SELECT ol_id, ol_i_id, ol_qty FROM order_line WHERE ol_id BETWEEN "
       "? AND ?"}));

  // ---- Update interactions ----------------------------------------------

  // Shopping cart creation: look at two items, create the cart with two
  // lines, accumulate the total.
  SCREP_RETURN_NOT_OK(Define(
      db, registry, kShoppingCart,
      {"SELECT i_id, i_cost, i_stock FROM item WHERE i_id = ?",
       "SELECT i_id, i_cost, i_stock FROM item WHERE i_id = ?",
       "INSERT INTO shopping_cart VALUES (?, ?, ?)",
       "INSERT INTO shopping_cart_line VALUES (?, ?, ?, ?)",
       "INSERT INTO shopping_cart_line VALUES (?, ?, ?, ?)",
       "UPDATE shopping_cart SET sc_total = sc_total + ? WHERE sc_id = ?"}));

  // Cart update: change a line's quantity and the cart total.
  SCREP_RETURN_NOT_OK(Define(
      db, registry, kCartUpdate,
      {"SELECT i_id, i_cost FROM item WHERE i_id = ?",
       "UPDATE shopping_cart_line SET scl_qty = ? WHERE scl_id = ?",
       "UPDATE shopping_cart SET sc_total = sc_total + ?, sc_date = ? WHERE "
       "sc_id = ?"}));

  // Customer registration: new address and customer rows.
  SCREP_RETURN_NOT_OK(Define(
      db, registry, kCustomerRegistration,
      {"INSERT INTO address VALUES (?, ?, ?, ?, ?)",
       "INSERT INTO customer VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)"}));

  // Buy request: cart summary page, refreshing the cart timestamp.
  SCREP_RETURN_NOT_OK(Define(
      db, registry, kBuyRequest,
      {"SELECT c_id, c_discount, c_balance FROM customer WHERE c_id = ?",
       "SELECT scl_id, scl_i_id, scl_qty FROM shopping_cart_line WHERE "
       "scl_id BETWEEN ? AND ?",
       "UPDATE shopping_cart SET sc_date = ? WHERE sc_id = ?"}));

  // Buy confirm: the heavyweight purchase transaction — order + lines,
  // stock decrements, payment, customer balance, cart cleared.
  SCREP_RETURN_NOT_OK(Define(
      db, registry, kBuyConfirm,
      {"SELECT scl_id, scl_i_id, scl_qty FROM shopping_cart_line WHERE "
       "scl_id BETWEEN ? AND ?",
       "INSERT INTO orders VALUES (?, ?, ?, ?, ?, ?, ?)",
       "INSERT INTO order_line VALUES (?, ?, ?, ?, ?)",
       "INSERT INTO order_line VALUES (?, ?, ?, ?, ?)",
       "UPDATE item SET i_stock = i_stock - ?, i_total_sold = i_total_sold "
       "+ ? WHERE i_id = ?",
       "UPDATE item SET i_stock = i_stock - ?, i_total_sold = i_total_sold "
       "+ ? WHERE i_id = ?",
       "INSERT INTO cc_xacts VALUES (?, ?, ?, ?)",
       "UPDATE customer SET c_balance = c_balance + ?, c_ytd_pmt = "
       "c_ytd_pmt + ? WHERE c_id = ?",
       "DELETE FROM shopping_cart_line WHERE scl_id BETWEEN ? AND ?"}));

  // Admin update: re-price an item and refresh its publication date.
  SCREP_RETURN_NOT_OK(Define(
      db, registry, kAdminUpdate,
      {"SELECT i_id, i_title, i_cost FROM item WHERE i_id = ?",
       "UPDATE item SET i_cost = ?, i_pub_date = ?, i_related = ? WHERE "
       "i_id = ?"}));

  return Status::OK();
}

}  // namespace screp::tpcw
