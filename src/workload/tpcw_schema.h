// The TPC-W database: schema and deterministic population.
//
// Standard TPC-W scaling is 10,000 items and 2,880 customers per EB; the
// paper runs 200 EBs / 10,000 items (an 850 MB database).  Populating the
// full cardinality on every replica of every simulated configuration is
// pointless for the experiments (the delays depend on the *transactions*,
// not the cold rows), so the scale is configurable and benchmarks default
// to a proportionally reduced population — DESIGN.md records this
// substitution.

#ifndef SCREP_WORKLOAD_TPCW_SCHEMA_H_
#define SCREP_WORKLOAD_TPCW_SCHEMA_H_

#include <string>

#include "common/status.h"
#include "storage/database.h"

namespace screp {

/// TPC-W population scale.
struct TpcwScale {
  int items = 1000;      ///< spec/paper: 10,000
  int customers = 1440;  ///< spec: 2,880 per EB
  int countries = 92;
  /// Initial committed orders (spec: 0.9 x customers).
  int initial_orders = 1296;
  /// Order lines per initial order.
  int lines_per_order = 3;
  /// Subjects partition the item table into contiguous id ranges,
  /// emulating the subject index of a real deployment.
  int subjects = 24;
};

/// Key-space conventions shared by the schema, the population, and the
/// transaction generators.
namespace tpcw {

/// Authors are items/4 (spec: .25 x items).
inline int AuthorCount(const TpcwScale& s) { return s.items / 4 + 1; }
/// Two addresses per customer (spec).
inline int AddressCount(const TpcwScale& s) { return s.customers * 2; }

/// Initial orders occupy o_id in [kInitialOrderBase, base + count).
inline constexpr int64_t kInitialOrderBase = 1000000;
/// Order lines of order o live at ol_id in [o*10, o*10+9].
inline constexpr int64_t kLinesPerOrderKeySpan = 10;
/// Cart lines of cart c live at scl_id in [c*100, c*100+99].
inline constexpr int64_t kLinesPerCartKeySpan = 100;
/// Client-generated ids start at (client+1) * kClientKeyBase + counter.
inline constexpr int64_t kClientKeyBase = 10000000;

/// Item-id range [lo, hi] of a subject (the emulated subject index).
void SubjectRange(const TpcwScale& s, int subject, int64_t* lo, int64_t* hi);

}  // namespace tpcw

/// Creates the 10 TPC-W tables and loads the initial population.
/// Deterministic: every replica ends up identical.
Status BuildTpcwSchema(Database* db, const TpcwScale& scale);

}  // namespace screp

#endif  // SCREP_WORKLOAD_TPCW_SCHEMA_H_
