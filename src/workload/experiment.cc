#include "workload/experiment.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "obs/json.h"
#include "runtime/sim_runtime.h"

namespace screp {

std::string AuditSummary::ToString() const {
  if (!enabled) return "audit: off";
  std::ostringstream out;
  if (ok) {
    out << "audit: OK (" << events << " events, " << checks << " checks)";
  } else {
    out << "audit: FAILED with " << violations << " violation(s)";
    if (!first_violation.empty()) out << "; first: " << first_violation;
  }
  out << "; version lag at BEGIN p50/p95/p99 = " << version_lag_p50 << "/"
      << version_lag_p95 << "/" << version_lag_p99
      << ", snapshot age p95 = " << snapshot_age_p95_ms << " ms";
  return out.str();
}

std::string HealthSummary::ToString() const {
  if (!enabled) return "health: off";
  std::ostringstream out;
  out << "health: " << final_state << " (worst " << worst_state << ", "
      << transitions << " transition(s), " << firings << " firing(s)";
  if (!detectors.empty()) out << ": " << detectors;
  out << ")";
  return out.str();
}

std::string ExperimentResult::Header() {
  return "config  repl cli |    TPS  resp(ms) p99(ms) syncd(ms) | "
         "version queries certify    sync  commit  global | "
         "commits  aborts util";
}

std::string ExperimentResult::ToLine() const {
  char buf[320];
  std::snprintf(
      buf, sizeof(buf),
      "%-7s %4d %3d | %6.1f %9.2f %7.2f %9.2f | %7.2f %7.2f %7.2f %7.2f "
      "%7.2f %7.2f | %7lld %7lld %4.2f",
      ConsistencyLevelName(level), replicas, clients, throughput_tps,
      mean_response_ms, p99_response_ms, sync_delay_ms, version_ms,
      queries_ms, certify_ms, sync_ms, commit_ms, global_ms,
      static_cast<long long>(committed),
      static_cast<long long>(cert_aborts + early_aborts + exec_errors),
      replica_cpu_utilization);
  return buf;
}

std::string ExperimentResult::ToJson() const {
  std::ostringstream out;
  out << "{\"workload\":\"" << obs::JsonEscape(workload) << "\""
      << ",\"level\":\"" << ConsistencyLevelName(level) << "\""
      << ",\"replicas\":" << replicas << ",\"clients\":" << clients
      << ",\"throughput_tps\":" << throughput_tps
      << ",\"response_ms\":{\"mean\":" << mean_response_ms
      << ",\"p50\":" << p50_response_ms << ",\"p95\":" << p95_response_ms
      << ",\"p99\":" << p99_response_ms << "}"
      << ",\"sync_delay_ms\":" << sync_delay_ms
      << ",\"stages_ms\":{\"version\":" << version_ms
      << ",\"queries\":" << queries_ms << ",\"certify\":" << certify_ms
      << ",\"sync\":" << sync_ms << ",\"commit\":" << commit_ms
      << ",\"global\":" << global_ms << "}"
      << ",\"committed\":" << committed
      << ",\"committed_updates\":" << committed_updates
      << ",\"cert_aborts\":" << cert_aborts
      << ",\"early_aborts\":" << early_aborts
      << ",\"exec_errors\":" << exec_errors
      << ",\"replica_failures\":" << replica_failures
      << ",\"overloaded\":" << overloaded
      << ",\"client_timeouts\":" << client_timeouts
      << ",\"lb_shed\":" << lb_shed
      << ",\"certifier_shed\":" << certifier_shed
      << ",\"peak_admission_queue\":" << peak_admission_queue
      << ",\"peak_pending_writesets\":" << peak_pending_writesets
      << ",\"replica_cpu_utilization\":" << replica_cpu_utilization
      << ",\"certifier_disk_utilization\":" << certifier_disk_utilization;
  if (audit.enabled) {
    out << ",\"audit\":{\"ok\":" << (audit.ok ? "true" : "false")
        << ",\"events\":" << audit.events << ",\"checks\":" << audit.checks
        << ",\"violations\":" << audit.violations;
    if (!audit.first_violation.empty()) {
      out << ",\"first_violation\":\""
          << obs::JsonEscape(audit.first_violation) << "\"";
    }
    out << ",\"staleness\":{\"version_lag\":{\"p50\":"
        << audit.version_lag_p50 << ",\"p95\":" << audit.version_lag_p95
        << ",\"p99\":" << audit.version_lag_p99
        << "},\"snapshot_age_ms\":{\"p50\":" << audit.snapshot_age_p50_ms
        << ",\"p95\":" << audit.snapshot_age_p95_ms
        << ",\"p99\":" << audit.snapshot_age_p99_ms << "}}}";
  } else {
    out << ",\"audit\":null";
  }
  // Omitted entirely (not null) when off: profile-off BENCH JSON is
  // byte-identical to output from before the profiler existed.
  if (profile.enabled) out << ",\"profile\":" << profile.json;
  // Likewise for health: off-runs carry no "health" member at all.
  if (health.enabled) {
    out << ",\"health\":{\"state\":\"" << obs::JsonEscape(health.final_state)
        << "\",\"worst\":\"" << obs::JsonEscape(health.worst_state)
        << "\",\"transitions\":" << health.transitions
        << ",\"firings\":" << health.firings << ",\"detectors\":\""
        << obs::JsonEscape(health.detectors)
        << "\",\"first_transition_at\":" << health.first_transition_at
        << "}";
  }
  out << "}";
  return out.str();
}

Result<ExperimentResult> RunExperiment(const Workload& workload,
                                       const ExperimentConfig& config) {
  runtime::SimRuntime rt;
  Simulator& sim = *rt.sim();
  SystemConfig system_config = config.system;
  system_config.seed = config.seed;
  if (!config.trace_json_path.empty()) system_config.obs.tracing = true;
  if (!config.metrics_json_path.empty() &&
      system_config.obs.sample_period == 0) {
    system_config.obs.sample_period = Millis(500);
  }
  if (config.audit || !config.audit_json_path.empty()) {
    system_config.obs.audit = true;
  }
  if (config.profile || !config.profile_json_path.empty()) {
    system_config.obs.profile = true;
  }
  if (config.health || !config.health_json_path.empty() ||
      !config.timeline_json_path.empty()) {
    system_config.obs.health = true;
  }
  SCREP_ASSIGN_OR_RETURN(
      auto system,
      ReplicatedSystem::Create(
          &rt, system_config,
          [&workload](Database* db) { return workload.BuildSchema(db); },
          [&workload](const Database& db, sql::TransactionRegistry* reg) {
            return workload.DefineTransactions(db, reg);
          }));
  if (config.history != nullptr) system->SetHistory(config.history);
  if (obs::Profiler* profiler = system->obs()->profiler()) {
    profiler->set_measure_from(config.warmup);
  }

  MetricsCollector metrics(config.warmup);
  Rng seed_rng(config.seed);

  ClientConfig client_config = config.client;
  client_config.mean_think_time = config.mean_think_time;

  std::vector<std::unique_ptr<ClientDriver>> clients;
  clients.reserve(static_cast<size_t>(config.client_count));
  for (int c = 0; c < config.client_count; ++c) {
    clients.push_back(std::make_unique<ClientDriver>(
        system.get(), &metrics,
        workload.CreateGenerator(system->registry(), c, seed_rng.Fork()), c,
        client_config, seed_rng.Fork()));
  }
  system->SetClientCallback([&clients](const TxnResponse& response) {
    clients[static_cast<size_t>(response.client_id)]->OnResponse(response);
  });
  for (auto& client : clients) client->Start();

  // Reset resource statistics at the end of warm-up so utilization covers
  // only the measurement window.
  rt.Schedule(config.warmup, [&system]() {
    for (int r = 0; r < system->replica_count(); ++r) {
      system->replica(r)->proxy()->cpu()->ResetStats();
    }
    if (ShardedCertifier* sharded = system->sharded_certifier()) {
      for (int s = 0; s < sharded->shard_count(); ++s) {
        sharded->lane_cpu(s)->ResetStats();
        sharded->lane_disk(s)->ResetStats();
      }
    } else {
      system->certifier()->cpu()->ResetStats();
      system->certifier()->disk()->ResetStats();
    }
  });

  for (const FaultEvent& fault : config.faults) {
    rt.Schedule(fault.crash_at, [&system, fault]() {
      system->CrashReplica(fault.replica);
    });
    if (fault.recover_at != FaultEvent::kNoRecovery) {
      rt.Schedule(fault.recover_at, [&system, fault]() {
        system->RecoverReplica(fault.replica);
      });
    }
  }

  const TimePoint end = config.warmup + config.duration;
  // Stop the closed loops at the end of the window, then drain in-flight
  // transactions so recorded histories are complete (commit versions with
  // no response would otherwise look like gaps in the total order).
  rt.Schedule(end, [&clients, &system]() {
    for (auto& client : clients) client->Stop();
    system->StopGc();  // otherwise the GC daemon keeps the queue alive
    system->obs()->StopSampling();  // likewise for the sampler daemon
  });
  sim.RunUntil(end);
  metrics.Finish(end);
  sim.RunAll();

  if (!config.metrics_json_path.empty()) {
    SCREP_RETURN_NOT_OK(
        system->obs()->WriteMetricsJson(config.metrics_json_path));
  }
  if (!config.trace_json_path.empty()) {
    SCREP_RETURN_NOT_OK(
        system->obs()->WriteTraceJson(config.trace_json_path));
  }
  if (!config.audit_json_path.empty()) {
    SCREP_RETURN_NOT_OK(
        system->obs()->WriteAuditJson(config.audit_json_path));
  }
  if (!config.profile_json_path.empty()) {
    SCREP_RETURN_NOT_OK(
        system->obs()->WriteProfileJson(config.profile_json_path));
  }
  if (!config.metrics_prom_path.empty()) {
    SCREP_RETURN_NOT_OK(
        system->obs()->WriteMetricsProm(config.metrics_prom_path));
  }
  if (!config.health_json_path.empty()) {
    SCREP_RETURN_NOT_OK(
        system->obs()->WriteHealthJson(config.health_json_path));
  }
  if (!config.timeline_json_path.empty()) {
    SCREP_RETURN_NOT_OK(
        system->obs()->WriteTimelineJson(config.timeline_json_path));
  }

  ExperimentResult result;
  result.workload = workload.name();
  result.level = config.system.level;
  result.replicas = config.system.replica_count;
  result.clients = config.client_count;
  result.throughput_tps = metrics.Throughput();
  result.mean_response_ms = metrics.MeanResponseMs();
  result.p50_response_ms = metrics.response_histogram().Percentile(0.5) / 1e3;
  result.p95_response_ms = metrics.response_histogram().Percentile(0.95) / 1e3;
  result.p99_response_ms = metrics.P99ResponseMs();
  result.sync_delay_ms = metrics.MeanSyncDelayMs();
  result.version_ms =
      ToMillis(static_cast<Duration>(metrics.version_stage().mean()));
  result.queries_ms =
      ToMillis(static_cast<Duration>(metrics.queries_stage().mean()));
  result.certify_ms =
      ToMillis(static_cast<Duration>(metrics.certify_stage().mean()));
  result.sync_ms =
      ToMillis(static_cast<Duration>(metrics.sync_stage().mean()));
  result.commit_ms =
      ToMillis(static_cast<Duration>(metrics.commit_stage().mean()));
  result.global_ms =
      ToMillis(static_cast<Duration>(metrics.global_stage().mean()));
  result.committed = metrics.committed();
  result.committed_updates = metrics.committed_updates();
  result.cert_aborts = metrics.cert_aborts();
  result.early_aborts = metrics.early_aborts();
  result.exec_errors = metrics.exec_errors();
  result.replica_failures = metrics.replica_failures();
  result.overloaded = metrics.overloaded();
  for (const auto& client : clients) {
    result.client_timeouts += client->timeouts();
  }
  result.lb_shed = system->load_balancer()->shed_count();
  result.peak_admission_queue =
      static_cast<int64_t>(system->load_balancer()->peak_admission_queue());
  result.certifier_shed = system->sharded()
                              ? system->sharded_certifier()->shed_count()
                              : system->certifier()->shed_count();
  for (int r = 0; r < system->replica_count(); ++r) {
    result.peak_pending_writesets = std::max(
        result.peak_pending_writesets,
        static_cast<int64_t>(
            system->replica(r)->proxy()->peak_pending_writesets()));
  }

  double cpu_total = 0;
  for (int r = 0; r < system->replica_count(); ++r) {
    cpu_total += system->replica(r)->proxy()->cpu()->Utilization();
  }
  result.replica_cpu_utilization =
      cpu_total / static_cast<double>(system->replica_count());
  if (ShardedCertifier* sharded = system->sharded_certifier()) {
    // The busiest lane: the WAL bottleneck of a partitioned certifier.
    for (int s = 0; s < sharded->shard_count(); ++s) {
      result.certifier_disk_utilization =
          std::max(result.certifier_disk_utilization,
                   sharded->lane_disk(s)->Utilization());
    }
  } else {
    result.certifier_disk_utilization =
        system->certifier()->disk()->Utilization();
  }

  if (const obs::Auditor* auditor = system->obs()->auditor()) {
    result.audit.enabled = true;
    result.audit.ok = auditor->ok();
    result.audit.events = auditor->events_consumed();
    result.audit.checks = auditor->checks_performed();
    result.audit.violations = auditor->violation_count();
    if (!auditor->violations().empty()) {
      const auto& v = auditor->violations().front();
      result.audit.first_violation = "[" + v.check + "] " + v.detail;
    }
    obs::MetricsRegistry* registry = system->obs()->registry();
    const Histogram* lag = registry->GetHistogram(obs::kVersionLagHistogram);
    result.audit.version_lag_p50 = lag->Percentile(0.5);
    result.audit.version_lag_p95 = lag->Percentile(0.95);
    result.audit.version_lag_p99 = lag->Percentile(0.99);
    const Histogram* age = registry->GetHistogram(obs::kSnapshotAgeHistogram);
    result.audit.snapshot_age_p50_ms = age->Percentile(0.5) / 1e3;
    result.audit.snapshot_age_p95_ms = age->Percentile(0.95) / 1e3;
    result.audit.snapshot_age_p99_ms = age->Percentile(0.99) / 1e3;
  }

  if (const obs::Profiler* profiler = system->obs()->profiler()) {
    result.profile.enabled = true;
    result.profile.measured = profiler->measured();
    result.profile.conservation_checked = profiler->conservation_checked();
    result.profile.conservation_violations =
        profiler->conservation_violations();
    result.profile.first_violation = profiler->first_violation();
    for (int s = 0; s < obs::kProfileSegmentCount; ++s) {
      result.profile.segment_mean_ms[static_cast<size_t>(s)] =
          profiler->MeanSegmentMs(static_cast<obs::ProfileSegment>(s));
    }
    result.profile.json = profiler->ToJson();
  }

  if (const obs::HealthMonitor* monitor = system->obs()->health_monitor()) {
    result.health.enabled = true;
    result.health.final_state = obs::HealthStateName(monitor->state());
    result.health.worst_state = obs::HealthStateName(monitor->worst_state());
    result.health.transitions =
        static_cast<int64_t>(monitor->transitions().size());
    result.health.firings = monitor->total_firings();
    result.health.detectors = monitor->FiredDetectorNames();
    result.health.first_transition_at =
        monitor->transitions().empty() ? -1
                                       : monitor->transitions().front().at;
  }
  return result;
}

}  // namespace screp
