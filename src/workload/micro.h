// The paper's micro-benchmark (§V-B): 4 tables of 10,000 records
// (INT key, INT value, 100-char text field); each transaction reads or
// updates one random record of one random table; the read/update mix is
// the experiment parameter.

#ifndef SCREP_WORKLOAD_MICRO_H_
#define SCREP_WORKLOAD_MICRO_H_

#include "workload/client.h"

namespace screp {

/// Micro-benchmark parameters.
struct MicroConfig {
  int table_count = 4;
  int rows_per_table = 10000;
  int pad_chars = 100;
  /// Fraction of update transactions in [0, 1].
  double update_fraction = 0.25;
};

/// The micro-benchmark workload.
class MicroWorkload : public Workload {
 public:
  explicit MicroWorkload(MicroConfig config) : config_(config) {}

  std::string name() const override { return "micro"; }
  Status BuildSchema(Database* db) const override;
  Status DefineTransactions(const Database& db,
                            sql::TransactionRegistry* registry) const
      override;
  std::unique_ptr<TxnGenerator> CreateGenerator(
      const sql::TransactionRegistry& registry, int client_id,
      Rng rng) const override;

  const MicroConfig& config() const { return config_; }

  /// Table name for index i ("item0", "item1", ...).
  static std::string TableName(int i);

 private:
  MicroConfig config_;
};

}  // namespace screp

#endif  // SCREP_WORKLOAD_MICRO_H_
