#include "workload/client.h"

namespace screp {

ClientDriver::ClientDriver(ReplicatedSystem* system,
                           MetricsCollector* metrics,
                           std::unique_ptr<TxnGenerator> generator,
                           int client_id, ClientConfig config, Rng rng)
    : system_(system),
      metrics_(metrics),
      generator_(std::move(generator)),
      client_id_(client_id),
      session_(static_cast<SessionId>(client_id) + 1),
      config_(config),
      rng_(rng) {}

void ClientDriver::Start() { ThinkThenSubmit(); }

void ClientDriver::ThinkThenSubmit() {
  SimTime think = 0;
  if (config_.mean_think_time > 0) {
    think = static_cast<SimTime>(rng_.NextExponential(
        static_cast<double>(config_.mean_think_time)));
  }
  system_->sim()->Schedule(think, [this]() {
    if (stopped_) return;
    current_ = generator_->Next();
    has_current_ = true;
    SubmitCurrent();
  });
}

void ClientDriver::SubmitCurrent() {
  SCREP_CHECK(has_current_);
  TxnRequest request;
  request.txn_id = system_->NextTxnId();
  request.type = current_.type;
  request.session = session_;
  request.client_id = client_id_;
  request.params = current_.params;
  ++submitted_;
  system_->Submit(std::move(request));
}

void ClientDriver::OnResponse(const TxnResponse& response) {
  if (!stopped_) {
    const bool eager =
        system_->config().level == ConsistencyLevel::kEager;
    metrics_->Record(response, system_->sim()->Now(), eager);
  }
  if (response.outcome == TxnOutcome::kCommitted) {
    generator_->OnCommitted(current_);
    has_current_ = false;
    consecutive_exec_errors_ = 0;
    if (!stopped_) ThinkThenSubmit();
  } else if (!stopped_) {
    if (response.outcome == TxnOutcome::kExecutionError &&
        ++consecutive_exec_errors_ > config_.max_exec_error_retries) {
      // Deterministic failure (see ClientConfig): drop the instance.
      ++dropped_instances_;
      consecutive_exec_errors_ = 0;
      has_current_ = false;
      ThinkThenSubmit();
      return;
    }
    // Aborted: retry the same instance after a short delay — the client
    // loop never gives up on a transaction (closed system).
    ++retries_;
    system_->sim()->Schedule(config_.retry_delay,
                             [this]() { SubmitCurrent(); });
  }
}

}  // namespace screp
