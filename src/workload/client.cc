#include "workload/client.h"

#include <algorithm>

#include "obs/observability.h"

namespace screp {

Duration RetryBackoff(const ClientConfig& config, int attempt, Rng* rng) {
  if (config.backoff_base <= 0) return config.retry_delay;
  SCREP_CHECK(attempt >= 1);
  // Doubling via repeated addition: 2^(attempt-1) overflows int64 past
  // attempt 63, and a saturated closed loop can retry far more often.
  Duration delay = config.backoff_base;
  for (int i = 1; i < attempt && delay < config.backoff_cap; ++i) {
    delay *= 2;
  }
  delay = std::min(delay, config.backoff_cap);
  const double jitter =
      (1.0 - config.backoff_jitter) +
      2.0 * config.backoff_jitter * rng->NextDouble();
  delay = static_cast<Duration>(static_cast<double>(delay) * jitter);
  return std::max<Duration>(delay, 1);
}

ClientDriver::ClientDriver(ReplicatedSystem* system,
                           MetricsCollector* metrics,
                           std::unique_ptr<TxnGenerator> generator,
                           int client_id, ClientConfig config, Rng rng)
    : system_(system),
      metrics_(metrics),
      generator_(std::move(generator)),
      client_id_(client_id),
      session_(static_cast<SessionId>(client_id) + 1),
      config_(config),
      rng_(rng) {}

void ClientDriver::Start() { ThinkThenSubmit(); }

void ClientDriver::ThinkThenSubmit() {
  Duration think = 0;
  if (config_.mean_think_time > 0) {
    think = static_cast<Duration>(rng_.NextExponential(
        static_cast<double>(config_.mean_think_time)));
  }
  system_->runtime()->Schedule(think, [this]() {
    if (stopped_) return;
    current_ = generator_->Next();
    has_current_ = true;
    SubmitCurrent();
  });
}

void ClientDriver::SubmitCurrent() {
  SCREP_CHECK(has_current_);
  TxnRequest request;
  request.txn_id = system_->NextTxnId();
  request.type = current_.type;
  request.session = session_;
  request.client_id = client_id_;
  request.params = current_.params;
  ++submitted_;
  inflight_txn_ = request.txn_id;
  if (config_.request_timeout > 0) {
    const TxnId txn = request.txn_id;
    system_->runtime()->Schedule(config_.request_timeout,
                             [this, txn]() { OnTimeout(txn); });
  }
  system_->Submit(std::move(request));
}

void ClientDriver::OnTimeout(TxnId txn) {
  if (stopped_ || inflight_txn_ != txn) return;  // answered meanwhile
  ++timeouts_;
  obs::EventLog* event_log = system_->obs()->event_log();
  if (event_log->enabled()) {
    obs::Event e;
    e.kind = obs::EventKind::kTimeout;
    e.at = system_->runtime()->Now();
    e.txn = txn;
    e.session = session_;
    e.wait = config_.request_timeout;
    event_log->Append(std::move(e));
  }
  // Give up on this attempt: whatever response eventually arrives for
  // `txn` is dropped as stale, and the instance is resubmitted under a
  // fresh transaction id after backoff.
  inflight_txn_ = 0;
  ++retries_;
  ++retry_attempts_;
  system_->runtime()->Schedule(RetryBackoff(config_, retry_attempts_, &rng_),
                           [this]() {
                             if (stopped_) return;
                             SubmitCurrent();
                           });
}

void ClientDriver::OnResponse(const TxnResponse& response) {
  if (response.txn_id != inflight_txn_) {
    // A timed-out attempt answering late (possibly even committing —
    // the successor attempt then aborts on certification, so the closed
    // loop stays safe); the client moved on.
    ++stale_responses_;
    return;
  }
  inflight_txn_ = 0;
  if (!stopped_) {
    const bool eager =
        system_->config().level == ConsistencyLevel::kEager;
    metrics_->Record(response, system_->runtime()->Now(), eager);
  }
  if (response.outcome == TxnOutcome::kCommitted) {
    generator_->OnCommitted(current_);
    has_current_ = false;
    consecutive_exec_errors_ = 0;
    retry_attempts_ = 0;
    if (!stopped_) ThinkThenSubmit();
  } else if (!stopped_) {
    if (response.outcome == TxnOutcome::kExecutionError &&
        ++consecutive_exec_errors_ > config_.max_exec_error_retries) {
      // Deterministic failure (see ClientConfig): drop the instance.
      ++dropped_instances_;
      consecutive_exec_errors_ = 0;
      has_current_ = false;
      ThinkThenSubmit();
      return;
    }
    // Aborted (or shed under overload): retry the same instance after a
    // delay — the client loop never gives up on a transaction (closed
    // system).
    ++retries_;
    ++retry_attempts_;
    system_->runtime()->Schedule(RetryBackoff(config_, retry_attempts_, &rng_),
                             [this]() { SubmitCurrent(); });
  }
  if (stopped_) system_->EndSession(session_);
}

}  // namespace screp
