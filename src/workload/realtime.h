// Wall-clock harness helpers shared by the realtime bench driver
// (bench/realtime.cc) and the TCP server front-end (tools/screp_server):
//
//   * RealtimeSystemConfig() — a SystemConfig whose modeled network
//     latencies and service times are zeroed, so a system run over
//     ThreadRuntime is bounded by real CPU and real queueing instead of a
//     simulated hardware model played back in real time.
//   * KvGridWorkload — a single-table key/value workload whose prepared
//     transaction types form a (reads x updates) grid, so an interactive
//     front-end can map an ad-hoc BEGIN/READ/UPDATE/COMMIT session onto a
//     registered type (the middleware executes registered prepared
//     transactions only; see DESIGN.md §5i).
//
// Within every grid type the SELECT statements come first, then the
// UPDATEs — a buffered interactive transaction is replayed in that order
// at COMMIT, regardless of how the client interleaved its ops.

#ifndef SCREP_WORKLOAD_REALTIME_H_
#define SCREP_WORKLOAD_REALTIME_H_

#include <string>

#include "replication/system.h"

namespace screp {

/// Shape of the kv grid workload.
struct KvGridConfig {
  /// Rows preloaded into the kv table (keys 0..rows-1, val = key).
  int rows = 10000;
  /// Largest number of reads a single transaction may carry.
  int max_reads = 4;
  /// Largest number of updates a single transaction may carry.
  int max_updates = 4;
};

/// The kv grid workload: one table `kv(id INT, val INT)` and one prepared
/// transaction type per (reads, updates) pair with reads + updates > 0.
class KvGridWorkload {
 public:
  static constexpr const char* kTableName = "kv";

  explicit KvGridWorkload(KvGridConfig config) : config_(config) {}

  Status BuildSchema(Database* db) const;
  Status DefineTransactions(const Database& db,
                            sql::TransactionRegistry* registry) const;

  /// Registered name of the type carrying `reads` SELECTs then `updates`
  /// UPDATEs ("kv_r2_u1").
  static std::string TypeName(int reads, int updates);

  /// Grid lookup; InvalidArgument when (reads, updates) is outside the
  /// grid or both are zero.
  Result<TxnTypeId> TypeFor(const sql::TransactionRegistry& registry,
                            int reads, int updates) const;

  const KvGridConfig& config() const { return config_; }

 private:
  KvGridConfig config_;
};

/// SystemConfig for wall-clock runs: every modeled delay — link
/// latencies, jitter, statement/commit/refresh service times, the
/// certifier's CPU and log-force times — is zeroed.  What remains is the
/// real cost of executing the middleware on the ThreadRuntime: actual
/// queueing, actual statement execution, actual cross-thread handoffs.
SystemConfig RealtimeSystemConfig(int replicas, ConsistencyLevel level);

}  // namespace screp

#endif  // SCREP_WORKLOAD_REALTIME_H_
