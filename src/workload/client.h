// Workload abstraction and the closed-loop client driver (the paper's
// remote terminal emulator: each client thread issues transactions
// back-to-back, optionally separated by negative-exponential think time).

#ifndef SCREP_WORKLOAD_CLIENT_H_
#define SCREP_WORKLOAD_CLIENT_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "replication/system.h"
#include "workload/metrics.h"

namespace screp {

/// One generated transaction instance: a type plus bound parameters for
/// each of its statements.
struct TxnSpec {
  TxnTypeId type = kUnknownTxnType;
  std::vector<std::vector<Value>> params;
};

/// Per-client stream of transaction instances. Implementations may keep
/// client-side state (shopping carts, last order) which advances only via
/// OnCommitted, so aborted instances can be retried safely.
class TxnGenerator {
 public:
  virtual ~TxnGenerator() = default;
  /// Produces the next transaction instance.
  virtual TxnSpec Next() = 0;
  /// Called when an instance commits (drives client-side state).
  virtual void OnCommitted(const TxnSpec& spec) { (void)spec; }
};

/// A benchmark workload: schema, prepared transactions, and per-client
/// generators.
class Workload {
 public:
  virtual ~Workload() = default;
  virtual std::string name() const = 0;
  /// Creates tables and loads initial rows (deterministic).
  virtual Status BuildSchema(Database* db) const = 0;
  /// Registers the workload's prepared transactions.
  virtual Status DefineTransactions(const Database& db,
                                    sql::TransactionRegistry* registry)
      const = 0;
  /// Creates the generator for one client.
  virtual std::unique_ptr<TxnGenerator> CreateGenerator(
      const sql::TransactionRegistry& registry, int client_id,
      Rng rng) const = 0;
};

/// Closed-loop client behaviour.
struct ClientConfig {
  /// Mean of the negative-exponential think time between transactions
  /// (0 = back-to-back, as in the micro-benchmark).
  Duration mean_think_time = 0;
  /// Delay before retrying an aborted transaction instance.  Only used
  /// when `backoff_base` is 0 (the legacy fixed-delay retry path).
  Duration retry_delay = Millis(1.0);
  /// Jittered exponential backoff: > 0 switches retries from the fixed
  /// `retry_delay` to min(backoff_cap, backoff_base * 2^(attempt-1))
  /// scaled by a uniform jitter factor in [1 - backoff_jitter,
  /// 1 + backoff_jitter].  A retrying herd with a fixed delay re-arrives
  /// in lockstep and re-saturates an overloaded system forever; jittered
  /// exponential backoff spreads and thins the retry stream instead.
  Duration backoff_base = 0;
  Duration backoff_cap = Millis(64);
  double backoff_jitter = 0.5;
  /// > 0: if no response arrives within this bound the client gives up on
  /// the attempt (the response, should it still arrive, is dropped as
  /// stale) and resubmits the instance under a fresh transaction id after
  /// backoff.  Crash-safe: a request stranded by a replica crash no
  /// longer wedges its closed loop until the failure notice arrives.
  Duration request_timeout = 0;
  /// Execution errors can be deterministic (e.g. re-inserting a key whose
  /// first attempt actually committed but whose acknowledgment was lost in
  /// a replica crash); after this many consecutive execution errors the
  /// instance is dropped and the client moves on.
  int max_exec_error_retries = 5;
};

/// The delay before retry number `attempt` (1-based).  With
/// `backoff_base` unset this is the fixed `retry_delay` and `rng` is not
/// drawn from (so legacy configurations consume exactly the same random
/// stream as before backoff existed).
Duration RetryBackoff(const ClientConfig& config, int attempt, Rng* rng);

/// One emulated client: think, submit, await acknowledgment, repeat.
/// Aborted instances are retried until they commit (the closed loop).
class ClientDriver {
 public:
  ClientDriver(ReplicatedSystem* system, MetricsCollector* metrics,
               std::unique_ptr<TxnGenerator> generator, int client_id,
               ClientConfig config, Rng rng);

  /// Schedules the first submission.
  void Start();

  /// Stops the closed loop: in-flight work completes, but nothing new is
  /// submitted and nothing further is recorded. Used by the harness to
  /// drain the system at the end of the measurement window.  Ends the
  /// client's session at the load balancer once nothing is in flight
  /// (immediately here, otherwise when the last response arrives).
  void Stop() {
    stopped_ = true;
    if (inflight_txn_ == 0) system_->EndSession(session_);
  }

  /// Routed here by the experiment harness for this client's responses.
  void OnResponse(const TxnResponse& response);

  int client_id() const { return client_id_; }
  SessionId session() const { return session_; }
  int64_t submitted() const { return submitted_; }
  int64_t retries() const { return retries_; }
  int64_t dropped_instances() const { return dropped_instances_; }
  int64_t timeouts() const { return timeouts_; }
  int64_t stale_responses() const { return stale_responses_; }

 private:
  void ThinkThenSubmit();
  void SubmitCurrent();
  /// Fires `request_timeout` after submitting `txn`; a no-op unless that
  /// attempt is still the one in flight.
  void OnTimeout(TxnId txn);

  ReplicatedSystem* system_;
  MetricsCollector* metrics_;
  std::unique_ptr<TxnGenerator> generator_;
  int client_id_;
  SessionId session_;
  ClientConfig config_;
  Rng rng_;

  TxnSpec current_;
  bool has_current_ = false;
  bool stopped_ = false;
  int64_t submitted_ = 0;
  int64_t retries_ = 0;
  int consecutive_exec_errors_ = 0;
  int64_t dropped_instances_ = 0;
  /// Consecutive failed attempts of the current instance (drives the
  /// exponential backoff; reset on commit).
  int retry_attempts_ = 0;
  /// Transaction id of the attempt awaiting a response (0 = none).
  TxnId inflight_txn_ = 0;
  int64_t timeouts_ = 0;
  int64_t stale_responses_ = 0;
};

}  // namespace screp

#endif  // SCREP_WORKLOAD_CLIENT_H_
