// The experiment harness: stands up a replicated system + closed-loop
// clients inside a simulator, runs warm-up then a measurement window, and
// returns the aggregates every figure of the paper is built from.

#ifndef SCREP_WORKLOAD_EXPERIMENT_H_
#define SCREP_WORKLOAD_EXPERIMENT_H_

#include <array>
#include <memory>
#include <string>

#include "consistency/history.h"
#include "obs/profiler.h"
#include "workload/client.h"
#include "workload/metrics.h"

namespace screp {

/// A scheduled replica failure.
struct FaultEvent {
  ReplicaId replica = 0;
  TimePoint crash_at = 0;
  /// kNoRecovery leaves the replica down for the rest of the run.
  TimePoint recover_at = kNoRecovery;
  static constexpr TimePoint kNoRecovery = -1;
};

/// Parameters of one experiment run.
struct ExperimentConfig {
  SystemConfig system;
  int client_count = 8;
  /// Mean negative-exponential think time (0 = back-to-back).
  Duration mean_think_time = 0;
  /// Client retry/timeout behaviour (`mean_think_time` above overrides
  /// the copy inside; everything else — backoff, request timeout — is
  /// taken from here).
  ClientConfig client;
  Duration warmup = Seconds(3);
  Duration duration = Seconds(30);
  uint64_t seed = 42;
  /// When set, the run also records a history for consistency checking.
  History* history = nullptr;
  /// Replica failures injected during the run.
  std::vector<FaultEvent> faults;
  /// When non-empty, the metrics-registry snapshot plus the sampled time
  /// series are written here as JSON after the run (turns the gauge
  /// sampler on if `system.obs` did not already).
  std::string metrics_json_path;
  /// When non-empty, the per-transaction trace is written here in Chrome
  /// trace-event JSON after the run (turns tracing on).
  std::string trace_json_path;
  /// Turns on the structured event log + online consistency auditor for
  /// this run (ExperimentResult::audit then carries the verdict).
  bool audit = false;
  /// When non-empty, the end-of-run audit report (auditor verdict +
  /// staleness histograms) is written here as JSON (implies `audit`).
  std::string audit_json_path;
  /// Turns on the critical-path profiler for this run
  /// (ExperimentResult::profile then carries the per-segment breakdown).
  bool profile = false;
  /// When non-empty, the profiler's full JSON report is written here
  /// after the run (implies `profile`).
  std::string profile_json_path;
  /// When non-empty, the end-of-run metrics-registry snapshot is written
  /// here in Prometheus text exposition format.
  std::string metrics_prom_path;
  /// Turns on the online health monitor for this run
  /// (ExperimentResult::health then carries the verdict).
  bool health = false;
  /// When non-empty, the health monitor's full JSON report is written
  /// here after the run (implies `health`).
  std::string health_json_path;
  /// When non-empty, the timeline bundle (sampled series + health track +
  /// fault markers) is written here as JSON (implies `health`) — the
  /// input to tools/render_timeline.py.
  std::string timeline_json_path;
};

/// The online auditor's end-of-run verdict plus the staleness
/// percentiles, as carried in ExperimentResult (all zero when the run
/// did not audit).
struct AuditSummary {
  bool enabled = false;
  bool ok = true;
  int64_t events = 0;
  int64_t checks = 0;
  int64_t violations = 0;
  /// "[check] detail" of the first violation (empty when ok).
  std::string first_violation;

  // Staleness attribution at BEGIN (versions / milliseconds).
  double version_lag_p50 = 0, version_lag_p95 = 0, version_lag_p99 = 0;
  double snapshot_age_p50_ms = 0, snapshot_age_p95_ms = 0,
         snapshot_age_p99_ms = 0;

  /// One-line human summary.
  std::string ToString() const;
};

/// The critical-path profiler's per-run summary, as carried in
/// ExperimentResult (disabled unless the run profiled).
struct ProfileSummary {
  bool enabled = false;
  /// Attempts acknowledged inside the measurement window.
  int64_t measured = 0;
  int64_t conservation_checked = 0;
  int64_t conservation_violations = 0;
  /// Description of the first violated attempt (empty when clean).
  std::string first_violation;
  /// Population-mean milliseconds per segment over measured attempts,
  /// indexed by obs::ProfileSegment; the entries sum to the profiled
  /// mean response time.
  std::array<double, obs::kProfileSegmentCount> segment_mean_ms{};
  /// The profiler's full JSON report (segments, percentiles, bands).
  std::string json;
};

/// The online health monitor's end-of-run verdict, as carried in
/// ExperimentResult (disabled unless the run monitored health).
struct HealthSummary {
  bool enabled = false;
  /// Final / worst health state name ("healthy" / "degraded" /
  /// "critical").
  std::string final_state = "healthy";
  std::string worst_state = "healthy";
  int64_t transitions = 0;
  /// Rising-edge detector firings across the run (0 = detector-quiet).
  int64_t firings = 0;
  /// Comma-joined names of the detectors that fired (empty when quiet).
  std::string detectors;
  /// Virtual time (us) of the first departure from healthy (-1 = never).
  TimePoint first_transition_at = -1;

  /// One-line human summary.
  std::string ToString() const;
};

/// Aggregates of one run (times in ms, throughput in TPS).
struct ExperimentResult {
  std::string workload;
  ConsistencyLevel level = ConsistencyLevel::kLazyCoarse;
  int replicas = 0;
  int clients = 0;

  double throughput_tps = 0;
  double mean_response_ms = 0;
  double p50_response_ms = 0;
  double p95_response_ms = 0;
  double p99_response_ms = 0;
  double sync_delay_ms = 0;

  // Stage means (ms).
  double version_ms = 0, queries_ms = 0, certify_ms = 0, sync_ms = 0,
         commit_ms = 0, global_ms = 0;

  int64_t committed = 0;
  int64_t committed_updates = 0;
  int64_t cert_aborts = 0;
  int64_t early_aborts = 0;
  int64_t exec_errors = 0;
  int64_t replica_failures = 0;

  // Overload-protection observations (all zero with flow control off;
  // carried in ToJson() only — ToLine() stays byte-identical).
  int64_t overloaded = 0;        ///< shed responses seen by clients
  int64_t client_timeouts = 0;   ///< request timeouts across all clients
  int64_t lb_shed = 0;           ///< requests refused at the LB
  int64_t certifier_shed = 0;    ///< write sets refused at the certifier
  int64_t peak_admission_queue = 0;
  int64_t peak_pending_writesets = 0;  ///< max over replicas

  double replica_cpu_utilization = 0;  // mean over replicas
  double certifier_disk_utilization = 0;

  /// Online-audit verdict + staleness percentiles (zero unless the run
  /// had ExperimentConfig::audit on).
  AuditSummary audit;

  /// Critical-path breakdown (disabled unless ExperimentConfig::profile;
  /// carried in ToJson() only — ToLine() stays byte-identical).
  ProfileSummary profile;

  /// Online health verdict (disabled unless ExperimentConfig::health;
  /// carried in ToJson() only — ToLine() stays byte-identical).
  HealthSummary health;

  /// One fixed-width report line; see ResultHeader() for the columns.
  /// (Audit results are NOT part of the line: audit-off output is
  /// byte-identical to runs before auditing existed.)
  std::string ToLine() const;
  static std::string Header();

  /// The result as one JSON object (throughput, latency percentiles,
  /// abort counts, staleness percentiles, audit verdict) — the
  /// machine-readable form behind the bench drivers' BENCH_*.json.
  std::string ToJson() const;
};

/// Runs one experiment. Fails only on setup errors (schema/preparation);
/// runtime invariant violations abort via SCREP_CHECK.
Result<ExperimentResult> RunExperiment(const Workload& workload,
                                       const ExperimentConfig& config);

}  // namespace screp

#endif  // SCREP_WORKLOAD_EXPERIMENT_H_
