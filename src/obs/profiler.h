// Per-transaction critical-path profiler.
//
// The tracer's spans and the event log each tell half the story: spans
// say how long each stage took, kTxnFinished says how long the client
// waited.  The profiler joins the two into one ledger per transaction
// *attempt* (each client retry runs under a fresh TxnId, so attempts are
// natural units) and decomposes the measured response time into
// exclusive, non-overlapping segments:
//
//   net_client_lb     client->LB and LB->client channel hops
//   admission_wait    queued in the LB admission window
//   net_lb_replica    LB->proxy dispatch and proxy->LB response hops
//   version_wait      BEGIN blocked until V_local reached the tag
//   exec              statement execution on the replica CPU
//   net_certifier     proxy->certifier and certifier->proxy hops
//   cert_intake_wait  queued for the certifier CPU
//   certify           certification service time
//   force_wait        certified, waiting for the group-commit log force
//   gap_wait          decision back, waiting for earlier versions to
//                     arrive/apply (refresh propagation gap)
//   lane_wait         contiguous but queued for an apply lane
//   apply             writeset application service time
//   publish_wait      applied out-of-order, waiting for in-order publish
//   commit            read-only commit service time
//   claim_wait        decision raced the refresh stream: version already
//                     applied locally, commit settled against the claim
//   global_wait       eager: locally committed, waiting for the global
//                     commit barrier
//   retry             residual of failed/timed-out attempts (time the
//                     attempt spent dead in the water before the client
//                     gave up or was refused)
//
// Because every hand-off between stages is instrumented (the network
// hops are measured spans, not inferred gaps), the segments of a
// committed attempt must tile [submit, ack] exactly: the profiler
// checks sum(segments) == response time within one simulator tick and
// counts violations.  Non-committed attempts put their unaccounted
// remainder into `retry` instead — that time is real (the client waited
// through it) but belongs to no stage.
//
// Aggregation is over attempts acknowledged inside the measurement
// window: per-segment totals/percentiles plus percentile-banded
// attribution (which segments dominate the p50 band vs the p99 tail of
// the response distribution).

#ifndef SCREP_OBS_PROFILER_H_
#define SCREP_OBS_PROFILER_H_

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/sim_time.h"
#include "common/status.h"
#include "common/types.h"
#include "obs/eventlog.h"
#include "obs/trace.h"

namespace screp::obs {

/// One exclusive slice of an attempt's response time.
enum class ProfileSegment : int {
  kNetClientLb = 0,
  kAdmissionWait,
  kNetLbReplica,
  kVersionWait,
  kExec,
  kNetCertifier,
  kCertIntakeWait,
  kCertify,
  kForceWait,
  kGapWait,
  kLaneWait,
  kApply,
  kPublishWait,
  kCommit,
  kClaimWait,
  kGlobalWait,
  kRetry,
  kSegmentCount,
};

constexpr int kProfileSegmentCount =
    static_cast<int>(ProfileSegment::kSegmentCount);

/// Wait (queueing/blocking), service (CPU/disk work), or network hop —
/// the split SCAR-style designs need: waits can be moved, service cannot.
enum class SegmentKind { kWait, kService, kNetwork };

const char* ProfileSegmentName(ProfileSegment segment);
SegmentKind ProfileSegmentKind(ProfileSegment segment);
const char* SegmentKindName(SegmentKind kind);

/// Assembles spans + events into per-attempt segment ledgers.  Subscribe
/// via Tracer::AddSink and EventLog::AddSink; consumes no randomness and
/// never feeds back into the simulation.
class Profiler {
 public:
  Profiler() = default;

  /// Attempts acknowledged before `t` (warm-up) are excluded from the
  /// aggregates; conservation is still checked on every finished attempt.
  void set_measure_from(TimePoint t) { measure_from_ = t; }
  /// Allowed |sum(segments) - response| before a committed attempt
  /// counts as a conservation violation (default: one simulator tick).
  void set_tolerance(Duration t) { tolerance_ = t; }

  /// Tracer sink: accumulates the span into its attempt's ledger.
  void OnSpan(const TraceSpan& span);
  /// Event-log sink: kTxnFinished / kTimeout close an attempt.
  void OnEvent(const Event& event);

  /// One finished attempt's ledger.
  struct Attempt {
    std::array<Duration, kProfileSegmentCount> seg{};
    Duration total = 0;
    bool committed = false;
    bool timed_out = false;
    bool measured = false;  ///< acknowledged inside the window
  };

  // -- Counts --
  int64_t finished() const {
    return static_cast<int64_t>(attempts_.size());
  }
  int64_t measured() const { return measured_; }
  int64_t committed_count() const { return committed_; }
  int64_t failed() const { return failed_; }
  int64_t timeouts() const { return timeouts_; }
  /// Attempts with spans but no closing event (in flight at run end).
  int64_t unfinished() const { return static_cast<int64_t>(open_.size()); }
  /// kTxnFinished arriving after the client had already timed out.
  int64_t stale_finishes() const { return stale_finishes_; }

  // -- Conservation --
  int64_t conservation_checked() const { return conservation_checked_; }
  int64_t conservation_violations() const { return conservation_violations_; }
  /// Largest |residual| seen across checked attempts.
  Duration max_abs_residual() const { return max_abs_residual_; }
  const std::string& first_violation() const { return first_violation_; }

  // -- Aggregates over measured attempts --
  double SegmentTotalMs(ProfileSegment segment) const;
  /// Population mean (over all measured attempts, zeros included), so
  /// the per-segment means sum to the mean response time.
  double MeanSegmentMs(ProfileSegment segment) const;
  /// Compact "name=mean_ms" line of the nonzero segments.
  std::string MeanBreakdown() const;

  /// The full report: counts, conservation, per-segment stats, and
  /// percentile-banded attribution.
  std::string ToJson() const;
  Status WriteJson(const std::string& path) const;

  const std::vector<Attempt>& attempts() const { return attempts_; }

 private:
  struct OpenAttempt {
    std::array<Duration, kProfileSegmentCount> seg{};
    uint32_t seen = 0;  ///< span-table indices already credited
  };

  void Finalize(TxnId txn, Duration total, Duration ack, bool committed,
                bool timed_out);

  TimePoint measure_from_ = 0;
  Duration tolerance_ = 1;

  std::unordered_map<TxnId, OpenAttempt> open_;
  /// Timed-out attempts whose late response (if any) must be ignored.
  std::unordered_set<TxnId> closed_;
  std::vector<Attempt> attempts_;

  int64_t measured_ = 0;
  int64_t committed_ = 0;
  int64_t failed_ = 0;
  int64_t timeouts_ = 0;
  int64_t stale_finishes_ = 0;
  int64_t conservation_checked_ = 0;
  int64_t conservation_violations_ = 0;
  Duration max_abs_residual_ = 0;
  std::string first_violation_;

  /// Running per-segment totals over measured attempts (duplicates the
  /// information in attempts_ for O(1) driver queries).
  std::array<Duration, kProfileSegmentCount> measured_totals_{};
  Duration measured_response_total_ = 0;
};

}  // namespace screp::obs

#endif  // SCREP_OBS_PROFILER_H_
