#include "obs/observability.h"

#include <fstream>

#include "common/logging.h"
#include "obs/json.h"

namespace screp::obs {

Observability::Observability(Simulator* sim, const ObsConfig& config)
    : config_(config),
      tracer_(config.trace_capacity),
      sampler_(sim, &registry_),
      event_log_(config.event_log_capacity) {
  tracer_.set_enabled(config.tracing);
  event_log_.set_enabled(config.event_log || config.audit ||
                         config.profile);
  if (config.tracing) {
    // Drops are invisible in the exported trace itself; surface them so a
    // silently truncated trace can be spotted from the metrics.
    registry_.RegisterCallbackGauge("trace.dropped_spans", [this]() {
      return static_cast<double>(tracer_.dropped());
    });
  }
  if (config.profile) {
    profiler_ = std::make_unique<Profiler>();
    tracer_.AddSink([profiler = profiler_.get()](const TraceSpan& span) {
      profiler->OnSpan(span);
    });
    event_log_.AddSink([profiler = profiler_.get()](const Event& e) {
      profiler->OnEvent(e);
    });
  }
}

void Observability::ConfigureAuditor(bool expect_strong,
                                     bool expect_session) {
  if (!config_.audit || auditor_ != nullptr) return;
  AuditorConfig auditor_config;
  auditor_config.check_strong = expect_strong;
  auditor_config.check_session = expect_session;
  auditor_ = std::make_unique<Auditor>(auditor_config, &registry_);
  event_log_.AddSink(
      [auditor = auditor_.get()](const Event& e) { auditor->OnEvent(e); });
}

void Observability::StartSampling() {
  if (config_.sample_period > 0 && !sampler_.running()) {
    sampler_.Start(config_.sample_period);
  }
}

std::string Observability::MetricsJson() const {
  std::string out = "{\"registry\":";
  out += registry_.ToJson();
  out += ",\"sampler\":";
  out += sampler_.ToJson();
  out += "}";
  return out;
}

std::string Observability::AuditJson() const {
  std::string out = "{\"auditor\":";
  out += auditor_ != nullptr ? auditor_->ToJson() : "null";
  out += ",\"staleness\":{";
  const auto snapshot = registry_.TakeSnapshot();
  bool first = true;
  for (const auto& [name, h] : snapshot.histograms) {
    if (name.rfind("staleness.", 0) != 0) continue;
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) + "\":{\"count\":" +
           std::to_string(h.count) + ",\"mean\":" + std::to_string(h.mean) +
           ",\"p50\":" + std::to_string(h.p50) +
           ",\"p95\":" + std::to_string(h.p95) +
           ",\"p99\":" + std::to_string(h.p99) +
           ",\"max\":" + std::to_string(h.max) + "}";
  }
  out += "}}";
  return out;
}

Status Observability::WriteAuditJson(const std::string& path) const {
  std::ofstream file(path, std::ios::trunc);
  if (!file.is_open()) {
    return Status::IOError("cannot open audit output: " + path);
  }
  file << AuditJson();
  file.close();
  if (!file.good()) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Status Observability::WriteMetricsJson(const std::string& path) const {
  std::ofstream file(path, std::ios::trunc);
  if (!file.is_open()) {
    return Status::IOError("cannot open metrics output: " + path);
  }
  file << MetricsJson();
  file.close();
  if (!file.good()) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Status Observability::WriteTraceJson(const std::string& path) const {
  if (tracer_.dropped() > 0) {
    SCREP_LOG(kWarn) << "trace ring buffer overflowed: " << tracer_.dropped()
                     << " span(s) dropped; " << path
                     << " is incomplete (raise ObsConfig::trace_capacity)";
  }
  return tracer_.WriteChromeJson(path);
}

Status Observability::WriteMetricsProm(const std::string& path) const {
  std::ofstream file(path, std::ios::trunc);
  if (!file.is_open()) {
    return Status::IOError("cannot open metrics output: " + path);
  }
  file << registry_.ToPrometheusText();
  file.close();
  if (!file.good()) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Status Observability::WriteProfileJson(const std::string& path) const {
  if (profiler_ == nullptr) {
    return Status::InvalidArgument(
        "profiling is off (set ObsConfig::profile)");
  }
  return profiler_->WriteJson(path);
}

}  // namespace screp::obs
