#include "obs/observability.h"

#include <fstream>

namespace screp::obs {

Observability::Observability(Simulator* sim, const ObsConfig& config)
    : config_(config),
      tracer_(config.trace_capacity),
      sampler_(sim, &registry_) {
  tracer_.set_enabled(config.tracing);
}

void Observability::StartSampling() {
  if (config_.sample_period > 0 && !sampler_.running()) {
    sampler_.Start(config_.sample_period);
  }
}

std::string Observability::MetricsJson() const {
  std::string out = "{\"registry\":";
  out += registry_.ToJson();
  out += ",\"sampler\":";
  out += sampler_.ToJson();
  out += "}";
  return out;
}

Status Observability::WriteMetricsJson(const std::string& path) const {
  std::ofstream file(path, std::ios::trunc);
  if (!file.is_open()) {
    return Status::IOError("cannot open metrics output: " + path);
  }
  file << MetricsJson();
  file.close();
  if (!file.good()) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace screp::obs
