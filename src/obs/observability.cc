#include "obs/observability.h"

#include <algorithm>
#include <fstream>

#include "common/logging.h"
#include "obs/json.h"

namespace screp::obs {

Observability::Observability(runtime::Runtime* rt, const ObsConfig& config)
    : config_(config),
      tracer_(config.trace_capacity),
      sampler_(rt, &registry_),
      event_log_(config.event_log_capacity) {
  // The health monitor is driven by sampler ticks; give it a period if
  // the caller asked for health but left the sampler off.
  if (config_.health && config_.sample_period == 0) {
    config_.sample_period = Millis(250);
  }
  tracer_.set_enabled(config.tracing);
  event_log_.set_enabled(config.event_log || config.audit ||
                         config.profile || config.health);
  if (config.tracing) {
    // Drops are invisible in the exported trace itself; surface them so a
    // silently truncated trace can be spotted from the metrics.
    registry_.RegisterCallbackGauge("trace.dropped_spans", [this]() {
      return static_cast<double>(tracer_.dropped());
    });
  }
  if (config.profile) {
    profiler_ = std::make_unique<Profiler>();
    tracer_.AddSink([profiler = profiler_.get()](const TraceSpan& span) {
      profiler->OnSpan(span);
    });
    event_log_.AddSink([profiler = profiler_.get()](const Event& e) {
      profiler->OnEvent(e);
    });
  }
}

void Observability::ConfigureAuditor(bool expect_strong,
                                     bool expect_session) {
  if (!config_.audit || auditor_ != nullptr) return;
  AuditorConfig auditor_config;
  auditor_config.check_strong = expect_strong;
  auditor_config.check_session = expect_session;
  auditor_ = std::make_unique<Auditor>(auditor_config, &registry_);
  event_log_.AddSink(
      [auditor = auditor_.get()](const Event& e) { auditor->OnEvent(e); });
}

void Observability::ConfigureHealth(int replica_count) {
  if (!config_.health || health_monitor_ != nullptr) return;
  // Keep enough window for the slowest consumer: the monitor's slow burn
  // window plus the trend detectors' lookback.
  TimeSeriesConfig ts_config;
  ts_config.window = static_cast<size_t>(
      std::max({config_.health_config.slow_window + 1, 16, 1}));
  timeseries_ = std::make_unique<TimeSeriesStore>(ts_config);
  health_monitor_ = std::make_unique<HealthMonitor>(
      config_.health_config, replica_count, timeseries_.get(), &registry_,
      &event_log_);
  event_log_.AddSink([monitor = health_monitor_.get()](const Event& e) {
    monitor->OnEvent(e);
  });
  // Series store ingests the tick first, then the monitor judges it; sink
  // order makes that sequencing explicit.
  sampler_.AddSink([store = timeseries_.get(), monitor =
                        health_monitor_.get()](
                       TimePoint at, Duration period,
                       const std::map<std::string, double>& gauges,
                       const std::map<std::string, double>& deltas) {
    store->Ingest(at, period, gauges, deltas);
    monitor->OnSample(at);
  });
}

void Observability::StartSampling() {
  if (config_.sample_period > 0 && !sampler_.running()) {
    sampler_.Start(config_.sample_period);
  }
}

std::string Observability::MetricsJson() const {
  std::string out = "{\"registry\":";
  out += registry_.ToJson();
  out += ",\"sampler\":";
  out += sampler_.ToJson();
  out += "}";
  return out;
}

std::string Observability::AuditJson() const {
  std::string out = "{\"auditor\":";
  out += auditor_ != nullptr ? auditor_->ToJson() : "null";
  out += ",\"staleness\":{";
  const auto snapshot = registry_.TakeSnapshot();
  bool first = true;
  for (const auto& [name, h] : snapshot.histograms) {
    if (name.rfind("staleness.", 0) != 0) continue;
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) + "\":{\"count\":" +
           std::to_string(h.count) + ",\"mean\":" + std::to_string(h.mean) +
           ",\"p50\":" + std::to_string(h.p50) +
           ",\"p95\":" + std::to_string(h.p95) +
           ",\"p99\":" + std::to_string(h.p99) +
           ",\"max\":" + std::to_string(h.max) + "}";
  }
  out += "}}";
  return out;
}

Status Observability::WriteAuditJson(const std::string& path) const {
  std::ofstream file(path, std::ios::trunc);
  if (!file.is_open()) {
    return Status::IOError("cannot open audit output: " + path);
  }
  file << AuditJson();
  file.close();
  if (!file.good()) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Status Observability::WriteMetricsJson(const std::string& path) const {
  std::ofstream file(path, std::ios::trunc);
  if (!file.is_open()) {
    return Status::IOError("cannot open metrics output: " + path);
  }
  file << MetricsJson();
  file.close();
  if (!file.good()) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Status Observability::WriteTraceJson(const std::string& path) const {
  if (tracer_.dropped() > 0) {
    SCREP_LOG(kWarn) << "trace ring buffer overflowed: " << tracer_.dropped()
                     << " span(s) dropped; " << path
                     << " is incomplete (raise ObsConfig::trace_capacity)";
  }
  return tracer_.WriteChromeJson(path);
}

Status Observability::WriteMetricsProm(const std::string& path) const {
  std::ofstream file(path, std::ios::trunc);
  if (!file.is_open()) {
    return Status::IOError("cannot open metrics output: " + path);
  }
  file << registry_.ToPrometheusText();
  file.close();
  if (!file.good()) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Status Observability::WriteProfileJson(const std::string& path) const {
  if (profiler_ == nullptr) {
    return Status::InvalidArgument(
        "profiling is off (set ObsConfig::profile)");
  }
  return profiler_->WriteJson(path);
}

Status Observability::WriteHealthJson(const std::string& path) const {
  if (health_monitor_ == nullptr) {
    return Status::InvalidArgument(
        "health monitoring is off (set ObsConfig::health)");
  }
  std::ofstream file(path, std::ios::trunc);
  if (!file.is_open()) {
    return Status::IOError("cannot open health output: " + path);
  }
  file << health_monitor_->ToJson();
  file.close();
  if (!file.good()) return Status::IOError("write failed: " + path);
  return Status::OK();
}

std::string Observability::TimelineJson() const {
  std::string out = "{\"sampler\":";
  out += sampler_.ToJson();
  out += ",\"health\":";
  out += health_monitor_ != nullptr ? health_monitor_->TimelineJson()
                                    : "null";
  out += ",\"faults\":[";
  bool first = true;
  for (const Event& event : event_log_.Events()) {
    if (event.kind != EventKind::kCrash &&
        event.kind != EventKind::kRecover &&
        event.kind != EventKind::kFailover) {
      continue;
    }
    if (!first) out += ",";
    first = false;
    out += "{\"kind\":\"" + std::string(EventKindName(event.kind)) +
           "\",\"at\":" + std::to_string(event.at) + ",\"component\":\"" +
           JsonEscape(event.detail) + "\"";
    if (event.replica != kNoReplica) {
      out += ",\"replica\":" + std::to_string(event.replica);
    }
    out += "}";
  }
  out += "]}";
  return out;
}

Status Observability::WriteTimelineJson(const std::string& path) const {
  std::ofstream file(path, std::ios::trunc);
  if (!file.is_open()) {
    return Status::IOError("cannot open timeline output: " + path);
  }
  file << TimelineJson();
  file.close();
  if (!file.good()) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace screp::obs
