// Streaming windowed time-series layer on top of the Sampler: one
// fixed-capacity rolling window per gauge series and per counter *rate*
// series (per-period deltas divided by the sample period, so TPS / shed /
// abort / retransmit rates are first-class signals).
//
// Each window answers the questions an online health monitor asks of a
// signal — latest value, windowed mean/min/max, percentile, and the
// least-squares trend (rate of change per second) — without retaining the
// full run history.  The store is fed by a Sampler sink; nothing here
// schedules events or perturbs virtual time.

#ifndef SCREP_OBS_TIMESERIES_H_
#define SCREP_OBS_TIMESERIES_H_

#include <cstddef>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "common/sim_time.h"

namespace screp::obs {

/// The most recent `capacity` samples of one series, with summary
/// statistics over exactly those samples.
class RollingWindow {
 public:
  explicit RollingWindow(size_t capacity);

  /// Appends one sample, evicting the oldest past capacity.
  void Add(TimePoint at, double value);

  size_t count() const { return samples_.size(); }
  size_t capacity() const { return capacity_; }
  bool empty() const { return samples_.empty(); }

  /// Most recent value / its timestamp (0 when empty).
  double latest() const;
  TimePoint latest_time() const;

  double mean() const;
  double min() const;
  double max() const;

  /// Value at quantile q in [0, 1] over the window (nearest-rank on the
  /// sorted window; exact, since windows are small by construction).
  double Percentile(double q) const;

  /// Least-squares slope of value over time, in value units per second;
  /// 0 with fewer than two samples or zero time spread.
  double SlopePerSec() const;

  /// Same, restricted to the most recent `last_n` samples — the trend on
  /// a shorter timescale than the full window (detectors use this so a
  /// long flat history does not dilute a fresh ramp).
  double TailSlopePerSec(size_t last_n) const;

  /// Samples oldest-first (for tests and exports).
  const std::deque<std::pair<TimePoint, double>>& samples() const {
    return samples_;
  }

 private:
  size_t capacity_;
  std::deque<std::pair<TimePoint, double>> samples_;
  double sum_ = 0;
};

/// How much history each series keeps.
struct TimeSeriesConfig {
  /// Samples retained per series (windows larger than any consumer's
  /// lookback).
  size_t window = 64;
};

/// The live windowed view over everything the sampler polls.
class TimeSeriesStore {
 public:
  explicit TimeSeriesStore(const TimeSeriesConfig& config);

  /// Ingests one sampling tick: current gauge readings plus per-period
  /// counter deltas (converted to per-second rates).  Matches the
  /// Sampler::Sink signature.
  void Ingest(TimePoint at, Duration period,
              const std::map<std::string, double>& gauges,
              const std::map<std::string, double>& counter_deltas);

  /// Ticks ingested so far.
  size_t samples() const { return samples_; }
  TimePoint last_sample_at() const { return last_sample_at_; }

  /// Rolling window of gauge `name`; nullptr when the series has never
  /// appeared (distinct from a window of zeros).
  const RollingWindow* gauge(const std::string& name) const;

  /// Rolling window of the per-second rate of counter `name`; nullptr
  /// when the counter has never appeared.
  const RollingWindow* rate(const std::string& name) const;

  std::vector<std::string> GaugeNames() const;
  std::vector<std::string> RateNames() const;

 private:
  TimeSeriesConfig config_;
  size_t samples_ = 0;
  TimePoint last_sample_at_ = 0;
  std::map<std::string, RollingWindow> gauges_;
  std::map<std::string, RollingWindow> rates_;
};

}  // namespace screp::obs

#endif  // SCREP_OBS_TIMESERIES_H_
