#include "obs/metrics_registry.h"

#include <cstdio>
#include <sstream>

#include "common/logging.h"
#include "obs/json.h"

namespace screp::obs {

std::string PrometheusEscapeLabel(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string PrometheusUnescapeLabel(const std::string& escaped) {
  std::string out;
  out.reserve(escaped.size());
  for (size_t i = 0; i < escaped.size(); ++i) {
    if (escaped[i] != '\\' || i + 1 >= escaped.size()) {
      out += escaped[i];
      continue;
    }
    switch (escaped[++i]) {
      case '\\': out += '\\'; break;
      case '"': out += '"'; break;
      case 'n': out += '\n'; break;
      default:  // not an escape we produce: keep verbatim
        out += '\\';
        out += escaped[i];
    }
  }
  return out;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  auto& slot = counters_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
    ++generation_;
  }
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  SCREP_CHECK_MSG(callback_gauges_.count(name) == 0,
                  "gauge name already taken by a callback gauge: " << name);
  auto& slot = gauges_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
    ++generation_;
  }
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>();
    ++generation_;
  }
  return slot.get();
}

void MetricsRegistry::RegisterCallbackGauge(const std::string& name,
                                            std::function<double()> fn) {
  SCREP_CHECK_MSG(fn != nullptr, "null callback gauge: " << name);
  SCREP_CHECK_MSG(
      gauges_.count(name) == 0 && callback_gauges_.count(name) == 0,
      "duplicate gauge registration: " << name);
  callback_gauges_.emplace(name, std::move(fn));
  ++generation_;
}

std::vector<std::string> MetricsRegistry::GaugeNames() const {
  std::vector<std::string> names;
  names.reserve(gauges_.size() + callback_gauges_.size());
  // Both maps are sorted; merge keeps the combined list sorted.
  auto it1 = gauges_.begin();
  auto it2 = callback_gauges_.begin();
  while (it1 != gauges_.end() || it2 != callback_gauges_.end()) {
    if (it2 == callback_gauges_.end() ||
        (it1 != gauges_.end() && it1->first < it2->first)) {
      names.push_back((it1++)->first);
    } else {
      names.push_back((it2++)->first);
    }
  }
  return names;
}

void MetricsRegistry::VisitGauges(
    const std::function<void(const std::string&, const Gauge*,
                             const std::function<double()>*)>& fn) const {
  // Both maps are sorted; merge keeps the visit order sorted.
  auto it1 = gauges_.begin();
  auto it2 = callback_gauges_.begin();
  while (it1 != gauges_.end() || it2 != callback_gauges_.end()) {
    if (it2 == callback_gauges_.end() ||
        (it1 != gauges_.end() && it1->first < it2->first)) {
      fn(it1->first, it1->second.get(), nullptr);
      ++it1;
    } else {
      fn(it2->first, nullptr, &it2->second);
      ++it2;
    }
  }
}

void MetricsRegistry::VisitCounters(
    const std::function<void(const std::string&, const Counter*)>& fn) const {
  for (const auto& [name, counter] : counters_) fn(name, counter.get());
}

double MetricsRegistry::GaugeValue(const std::string& name) const {
  if (auto it = gauges_.find(name); it != gauges_.end()) {
    return it->second->value();
  }
  if (auto it = callback_gauges_.find(name); it != callback_gauges_.end()) {
    return it->second();
  }
  return 0;
}

std::vector<std::string> MetricsRegistry::CounterNames() const {
  std::vector<std::string> names;
  names.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) names.push_back(name);
  return names;
}

int64_t MetricsRegistry::CounterValue(const std::string& name) const {
  if (auto it = counters_.find(name); it != counters_.end()) {
    return it->second->value();
  }
  return 0;
}

MetricsRegistry::Snapshot MetricsRegistry::TakeSnapshot() const {
  Snapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters[name] = counter->value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges[name] = gauge->value();
  }
  for (const auto& [name, fn] : callback_gauges_) {
    snapshot.gauges[name] = fn();
  }
  for (const auto& [name, hist] : histograms_) {
    Snapshot::HistogramSummary summary;
    summary.count = hist->count();
    summary.mean = hist->mean();
    summary.p50 = hist->Percentile(0.5);
    summary.p95 = hist->Percentile(0.95);
    summary.p99 = hist->Percentile(0.99);
    summary.max = hist->max();
    snapshot.histograms[name] = summary;
  }
  return snapshot;
}

namespace {

/// Shortest representation that round-trips a double.
std::string NumberToJson(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

}  // namespace

std::string MetricsRegistry::ToJson() const {
  const Snapshot snapshot = TakeSnapshot();
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    if (!first) out << ",";
    first = false;
    out << "\"" << JsonEscape(name) << "\":" << value;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    if (!first) out << ",";
    first = false;
    out << "\"" << JsonEscape(name) << "\":" << NumberToJson(value);
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : snapshot.histograms) {
    if (!first) out << ",";
    first = false;
    out << "\"" << JsonEscape(name) << "\":{\"count\":" << h.count
        << ",\"mean\":" << NumberToJson(h.mean)
        << ",\"p50\":" << NumberToJson(h.p50)
        << ",\"p95\":" << NumberToJson(h.p95)
        << ",\"p99\":" << NumberToJson(h.p99)
        << ",\"max\":" << NumberToJson(h.max) << "}";
  }
  out << "}}";
  return out.str();
}

std::string MetricsRegistry::ToPrometheusText() const {
  const Snapshot snapshot = TakeSnapshot();
  std::ostringstream out;
  out << "# TYPE screp_counter counter\n";
  for (const auto& [name, value] : snapshot.counters) {
    out << "screp_counter{name=\"" << PrometheusEscapeLabel(name) << "\"} "
        << value << "\n";
  }
  out << "# TYPE screp_gauge gauge\n";
  for (const auto& [name, value] : snapshot.gauges) {
    out << "screp_gauge{name=\"" << PrometheusEscapeLabel(name) << "\"} "
        << NumberToJson(value) << "\n";
  }
  out << "# TYPE screp_histogram summary\n";
  for (const auto& [name, h] : snapshot.histograms) {
    const std::string label = PrometheusEscapeLabel(name);
    out << "screp_histogram{name=\"" << label << "\",quantile=\"0.5\"} "
        << NumberToJson(h.p50) << "\n";
    out << "screp_histogram{name=\"" << label << "\",quantile=\"0.95\"} "
        << NumberToJson(h.p95) << "\n";
    out << "screp_histogram{name=\"" << label << "\",quantile=\"0.99\"} "
        << NumberToJson(h.p99) << "\n";
    out << "screp_histogram_sum{name=\"" << label << "\"} "
        << NumberToJson(h.mean * static_cast<double>(h.count)) << "\n";
    out << "screp_histogram_count{name=\"" << label << "\"} " << h.count
        << "\n";
  }
  return out.str();
}

Result<MetricsRegistry::Snapshot> MetricsRegistry::SnapshotFromJson(
    const std::string& json) {
  SCREP_ASSIGN_OR_RETURN(JsonValue root, JsonValue::Parse(json));
  if (!root.is_object()) {
    return Status::InvalidArgument("registry JSON is not an object");
  }
  Snapshot snapshot;
  if (const JsonValue* counters = root.Find("counters")) {
    for (const auto& [name, value] : counters->object()) {
      snapshot.counters[name] = static_cast<int64_t>(value.number());
    }
  }
  if (const JsonValue* gauges = root.Find("gauges")) {
    for (const auto& [name, value] : gauges->object()) {
      snapshot.gauges[name] = value.number();
    }
  }
  if (const JsonValue* histograms = root.Find("histograms")) {
    for (const auto& [name, value] : histograms->object()) {
      Snapshot::HistogramSummary summary;
      auto field = [&value](const char* key) {
        const JsonValue* v = value.Find(key);
        return v != nullptr ? v->number() : 0.0;
      };
      summary.count = static_cast<int64_t>(field("count"));
      summary.mean = field("mean");
      summary.p50 = field("p50");
      summary.p95 = field("p95");
      summary.p99 = field("p99");
      summary.max = field("max");
      snapshot.histograms[name] = summary;
    }
  }
  return snapshot;
}

}  // namespace screp::obs
