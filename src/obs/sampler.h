// Periodic gauge/counter sampler: a daemon event on the Runtime that
// polls every gauge in a MetricsRegistry into time series, and every
// counter into per-period *delta* series (so rate signals — TPS, sheds,
// aborts, retransmits — exist without client-side diffing).
//
// Samples are taken at t = period, 2*period, ... — the right edges of
// MetricsCollector's timeline buckets when the harness uses the same
// width — so the internal queue/lag series line up with the client-side
// throughput timeline.  Like the GC daemon, the sampler must be stopped
// at the end of a run so the event queue can drain.
//
// Instruments registered after sampling started join the poll set at
// their first tick; earlier sample slots are zero-filled in the in-memory
// series (so every series stays aligned with `timestamps()`), but the
// JSON export emits `null` for them — a dashboard can tell "series did
// not exist yet" apart from a true zero.  SeriesStart() exposes the same
// boundary programmatically.

#ifndef SCREP_OBS_SAMPLER_H_
#define SCREP_OBS_SAMPLER_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/sim_time.h"
#include "obs/metrics_registry.h"
#include "runtime/runtime.h"

namespace screp::obs {

/// Polls registry gauges and counter deltas on a fixed virtual-time
/// period.
class Sampler {
 public:
  Sampler(runtime::Runtime* rt, MetricsRegistry* registry);

  /// Begins sampling every `period` (> 0) from now; the first sample is
  /// taken at Now() + period.
  void Start(Duration period);

  /// Stops sampling (the pending tick becomes a no-op).
  void Stop() { running_ = false; }

  bool running() const { return running_; }
  Duration period() const { return period_; }

  /// Live consumer invoked after every tick with that tick's values:
  /// current gauge readings and per-period counter deltas (the streaming
  /// time-series layer subscribes here).
  using Sink = std::function<void(
      TimePoint at, Duration period, const std::map<std::string, double>& gauges,
      const std::map<std::string, double>& counter_deltas)>;
  void AddSink(Sink sink) { sinks_.push_back(std::move(sink)); }

  /// Virtual times at which samples were taken.
  const std::vector<TimePoint>& timestamps() const { return timestamps_; }

  /// One value per timestamp for every gauge.  Gauges registered after
  /// sampling started are zero-filled before SeriesStart() so all series
  /// stay aligned.
  const std::map<std::string, std::vector<double>>& series() const {
    return series_;
  }

  /// One per-period delta per timestamp for every counter (same
  /// alignment and SeriesStart() rules as gauges).  The first delta of a
  /// counter covers everything it counted before its first poll.
  const std::map<std::string, std::vector<double>>& counter_deltas() const {
    return counter_deltas_;
  }

  /// Index of the first timestamp at which `name` (gauge or counter) was
  /// actually present; values before it are padding.  Returns the number
  /// of timestamps for unknown series.
  size_t SeriesStart(const std::string& name) const;

  /// {"period_us":N,"timestamps":[...],"series":{name:[...]},
  ///  "counter_deltas":{name:[...]}}.  Slots from before a series existed
  /// are emitted as null, not 0.
  std::string ToJson() const;

 private:
  void Tick();

  /// Re-resolves the poll set: one handle per gauge/counter, pointing at
  /// the instrument and at its series storage, so a steady-state tick
  /// does no per-name map lookups.  Called only when the registry's
  /// generation moved (an instrument appeared); instruments are never
  /// removed, so every cached pointer stays valid between rebuilds.
  void RebuildPollSet();

  struct PolledGauge {
    const std::string* name;                     // registry-owned key
    const Gauge* gauge;                          // one of these two is set
    const std::function<double()>* callback;
    std::vector<double>* values;                 // node in series_
  };
  struct PolledCounter {
    const std::string* name;
    const Counter* counter;
    std::vector<double>* values;  // node in counter_deltas_
    int64_t* prev;                // node in counter_prev_
  };

  runtime::Runtime* rt_;
  MetricsRegistry* registry_;
  Duration period_ = 0;
  bool running_ = false;
  std::vector<TimePoint> timestamps_;
  std::map<std::string, std::vector<double>> series_;
  std::map<std::string, std::vector<double>> counter_deltas_;
  /// Cumulative counter value at the previous tick (delta baseline).
  std::map<std::string, int64_t> counter_prev_;
  /// First timestamp index at which each series existed.
  std::map<std::string, size_t> series_start_;
  std::vector<Sink> sinks_;
  /// Resolved poll set, valid while poll_generation_ matches the
  /// registry's generation.
  std::vector<PolledGauge> polled_gauges_;
  std::vector<PolledCounter> polled_counters_;
  uint64_t poll_generation_ = ~0ULL;
};

}  // namespace screp::obs

#endif  // SCREP_OBS_SAMPLER_H_
