// Periodic gauge sampler: a daemon event on the Simulator that polls
// every gauge in a MetricsRegistry into time series.
//
// Samples are taken at t = period, 2*period, ... — the right edges of
// MetricsCollector's timeline buckets when the harness uses the same
// width — so the internal queue/lag series line up with the client-side
// throughput timeline.  Like the GC daemon, the sampler must be stopped
// at the end of a run so the event queue can drain.

#ifndef SCREP_OBS_SAMPLER_H_
#define SCREP_OBS_SAMPLER_H_

#include <map>
#include <string>
#include <vector>

#include "common/sim_time.h"
#include "obs/metrics_registry.h"
#include "sim/simulator.h"

namespace screp::obs {

/// Polls registry gauges on a fixed virtual-time period.
class Sampler {
 public:
  Sampler(Simulator* sim, MetricsRegistry* registry);

  /// Begins sampling every `period` (> 0) from now; the first sample is
  /// taken at Now() + period.
  void Start(SimTime period);

  /// Stops sampling (the pending tick becomes a no-op).
  void Stop() { running_ = false; }

  bool running() const { return running_; }
  SimTime period() const { return period_; }

  /// Virtual times at which samples were taken.
  const std::vector<SimTime>& timestamps() const { return timestamps_; }

  /// One value per timestamp for every gauge.  Gauges registered after
  /// sampling started are zero-padded so all series stay aligned.
  const std::map<std::string, std::vector<double>>& series() const {
    return series_;
  }

  /// {"period_us":N,"timestamps":[...],"series":{name:[...]}}.
  std::string ToJson() const;

 private:
  void Tick();

  Simulator* sim_;
  MetricsRegistry* registry_;
  SimTime period_ = 0;
  bool running_ = false;
  std::vector<SimTime> timestamps_;
  std::map<std::string, std::vector<double>> series_;
};

}  // namespace screp::obs

#endif  // SCREP_OBS_SAMPLER_H_
