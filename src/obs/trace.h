// Per-transaction tracing into a bounded ring buffer.
//
// Each transaction carries its TxnId as the trace id; components emit
// spans for every stage it passes through (lb.route, proxy.start_delay,
// per-statement execution, certifier.certify, certifier.log_force,
// proxy.commit, eager.global_wait).  Timestamps are simulator virtual
// time (already microseconds, the unit Chrome tracing expects), so a
// whole run can be dumped as Chrome trace-event JSON and opened in
// chrome://tracing or Perfetto.
//
// The buffer is a fixed-capacity ring: when full, the oldest spans are
// overwritten and counted as dropped.  A disabled tracer (the default)
// ignores Add() after one branch, so instrumentation can stay in place
// permanently.

#ifndef SCREP_OBS_TRACE_H_
#define SCREP_OBS_TRACE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/sim_time.h"
#include "common/status.h"
#include "common/types.h"

namespace screp::obs {

/// Chrome-trace process ids used for the middleware components; replica
/// r maps to kReplicaPidBase + r.
constexpr int32_t kLbPid = 1;
constexpr int32_t kCertifierPid = 2;
constexpr int32_t kReplicaPidBase = 10;

/// One completed span.  Name/category/arg_name must be string literals
/// (spans are recorded on hot paths; no allocation happens per span).
struct TraceSpan {
  const char* name = "";
  const char* category = "";
  int32_t pid = 0;
  /// Chrome-trace thread id; per-transaction spans use the transaction id
  /// so each transaction renders as its own row.
  int64_t tid = 0;
  TimePoint start = 0;
  Duration duration = 0;
  /// Transaction this span belongs to (0 = none, e.g. a group-commit
  /// batch force).
  TxnId txn = 0;
  /// Optional extra argument (statement index, batch size, replica id).
  const char* arg_name = nullptr;
  int64_t arg_value = 0;
};

/// Bounded ring buffer of spans.
class Tracer {
 public:
  /// A live span consumer; sinks see every span, including those the
  /// ring later evicts, and even while the ring itself is disabled.
  using Sink = std::function<void(const TraceSpan&)>;

  explicit Tracer(size_t capacity);

  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  /// Whether spans go anywhere at all — the guard instrumentation sites
  /// use to decide if emitting spans is worth the bookkeeping.
  bool active() const { return enabled_ || !sinks_.empty(); }

  /// Subscribes a live consumer (e.g. the critical-path profiler).
  void AddSink(Sink sink) { sinks_.push_back(std::move(sink)); }

  /// Records a span: sinks always see it; the ring retains it only while
  /// enabled.  When the ring is full the oldest span is evicted.
  void Add(const TraceSpan& span);

  /// Names a Chrome-trace process id (emitted as metadata events).
  void SetProcessName(int32_t pid, std::string name);

  /// Spans currently retained, oldest first.
  std::vector<TraceSpan> Spans() const;

  size_t size() const { return size_; }
  size_t capacity() const { return ring_.size(); }
  /// Spans evicted because the ring was full.
  int64_t dropped() const { return dropped_; }

  /// Discards all recorded spans (not the process names).
  void Clear();

  /// The trace as Chrome trace-event JSON (the {"traceEvents":[...]}
  /// object form).
  std::string ToChromeJson() const;

  /// Writes ToChromeJson() to `path`.
  Status WriteChromeJson(const std::string& path) const;

 private:
  bool enabled_ = false;
  std::vector<Sink> sinks_;
  std::vector<TraceSpan> ring_;
  size_t head_ = 0;  ///< index of the oldest span
  size_t size_ = 0;
  int64_t dropped_ = 0;
  std::map<int32_t, std::string> process_names_;
};

}  // namespace screp::obs

#endif  // SCREP_OBS_TRACE_H_
