#include "obs/timeseries.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace screp::obs {

RollingWindow::RollingWindow(size_t capacity)
    : capacity_(capacity > 0 ? capacity : 1) {}

void RollingWindow::Add(TimePoint at, double value) {
  if (samples_.size() == capacity_) {
    sum_ -= samples_.front().second;
    samples_.pop_front();
  }
  samples_.emplace_back(at, value);
  sum_ += value;
}

double RollingWindow::latest() const {
  return samples_.empty() ? 0 : samples_.back().second;
}

TimePoint RollingWindow::latest_time() const {
  return samples_.empty() ? 0 : samples_.back().first;
}

double RollingWindow::mean() const {
  return samples_.empty() ? 0
                          : sum_ / static_cast<double>(samples_.size());
}

double RollingWindow::min() const {
  if (samples_.empty()) return 0;
  double m = samples_.front().second;
  for (const auto& [at, v] : samples_) m = std::min(m, v);
  return m;
}

double RollingWindow::max() const {
  if (samples_.empty()) return 0;
  double m = samples_.front().second;
  for (const auto& [at, v] : samples_) m = std::max(m, v);
  return m;
}

double RollingWindow::Percentile(double q) const {
  if (samples_.empty()) return 0;
  std::vector<double> sorted;
  sorted.reserve(samples_.size());
  for (const auto& [at, v] : samples_) sorted.push_back(v);
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::clamp(q, 0.0, 1.0);
  const size_t rank = static_cast<size_t>(
      std::ceil(clamped * static_cast<double>(sorted.size())));
  return sorted[rank > 0 ? rank - 1 : 0];
}

double RollingWindow::SlopePerSec() const {
  return TailSlopePerSec(samples_.size());
}

double RollingWindow::TailSlopePerSec(size_t last_n) const {
  const size_t n_samples = std::min(last_n, samples_.size());
  if (n_samples < 2) return 0;
  const size_t first = samples_.size() - n_samples;
  // Least squares on (t - t0) seconds vs value.
  const double t0 = static_cast<double>(samples_[first].first);
  double sum_t = 0, sum_v = 0, sum_tt = 0, sum_tv = 0;
  for (size_t i = first; i < samples_.size(); ++i) {
    const auto& [at, v] = samples_[i];
    const double t = (static_cast<double>(at) - t0) / 1e6;
    sum_t += t;
    sum_v += v;
    sum_tt += t * t;
    sum_tv += t * v;
  }
  const double n = static_cast<double>(n_samples);
  const double denom = n * sum_tt - sum_t * sum_t;
  if (denom == 0) return 0;  // all samples at the same instant
  return (n * sum_tv - sum_t * sum_v) / denom;
}

TimeSeriesStore::TimeSeriesStore(const TimeSeriesConfig& config)
    : config_(config) {
  SCREP_CHECK_MSG(config.window > 0, "time-series window must be positive");
}

void TimeSeriesStore::Ingest(
    TimePoint at, Duration period, const std::map<std::string, double>& gauges,
    const std::map<std::string, double>& counter_deltas) {
  ++samples_;
  last_sample_at_ = at;
  for (const auto& [name, value] : gauges) {
    auto it = gauges_.find(name);
    if (it == gauges_.end()) {
      it = gauges_.emplace(name, RollingWindow(config_.window)).first;
    }
    it->second.Add(at, value);
  }
  const double period_s = period > 0 ? ToSeconds(period) : 1.0;
  for (const auto& [name, delta] : counter_deltas) {
    auto it = rates_.find(name);
    if (it == rates_.end()) {
      it = rates_.emplace(name, RollingWindow(config_.window)).first;
    }
    it->second.Add(at, delta / period_s);
  }
}

const RollingWindow* TimeSeriesStore::gauge(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it != gauges_.end() ? &it->second : nullptr;
}

const RollingWindow* TimeSeriesStore::rate(const std::string& name) const {
  const auto it = rates_.find(name);
  return it != rates_.end() ? &it->second : nullptr;
}

std::vector<std::string> TimeSeriesStore::GaugeNames() const {
  std::vector<std::string> names;
  names.reserve(gauges_.size());
  for (const auto& [name, window] : gauges_) names.push_back(name);
  return names;
}

std::vector<std::string> TimeSeriesStore::RateNames() const {
  std::vector<std::string> names;
  names.reserve(rates_.size());
  for (const auto& [name, window] : rates_) names.push_back(name);
  return names;
}

}  // namespace screp::obs
