#include "obs/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace screp::obs {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Recursive-descent parser over the full input string.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Result<JsonValue> ParseDocument() {
    SCREP_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("trailing characters after JSON value");
    }
    return value;
  }

 private:
  Result<JsonValue> ParseValue() {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("unexpected end of JSON input");
    }
    switch (text_[pos_]) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"':
        return ParseString();
      case 't':
      case 'f':
        return ParseBool();
      case 'n':
        return ParseNull();
      default:
        return ParseNumber();
    }
  }

  Result<JsonValue> ParseObject() {
    JsonValue value;
    value.kind_ = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    SkipSpace();
    if (Peek() == '}') {
      ++pos_;
      return value;
    }
    while (true) {
      SkipSpace();
      SCREP_ASSIGN_OR_RETURN(JsonValue key, ParseString());
      SkipSpace();
      if (Peek() != ':') return Status::InvalidArgument("expected ':'");
      ++pos_;
      SCREP_ASSIGN_OR_RETURN(JsonValue member, ParseValue());
      value.object_.emplace(key.string_, std::move(member));
      SkipSpace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return value;
      }
      return Status::InvalidArgument("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> ParseArray() {
    JsonValue value;
    value.kind_ = JsonValue::Kind::kArray;
    ++pos_;  // '['
    SkipSpace();
    if (Peek() == ']') {
      ++pos_;
      return value;
    }
    while (true) {
      SCREP_ASSIGN_OR_RETURN(JsonValue element, ParseValue());
      value.array_.push_back(std::move(element));
      SkipSpace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return value;
      }
      return Status::InvalidArgument("expected ',' or ']' in array");
    }
  }

  Result<JsonValue> ParseString() {
    if (Peek() != '"') return Status::InvalidArgument("expected '\"'");
    ++pos_;
    JsonValue value;
    value.kind_ = JsonValue::Kind::kString;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          return Status::InvalidArgument("unterminated escape");
        }
        const char esc = text_[pos_++];
        switch (esc) {
          case '"':
          case '\\':
          case '/':
            value.string_ += esc;
            break;
          case 'n':
            value.string_ += '\n';
            break;
          case 'r':
            value.string_ += '\r';
            break;
          case 't':
            value.string_ += '\t';
            break;
          case 'b':
            value.string_ += '\b';
            break;
          case 'f':
            value.string_ += '\f';
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              return Status::InvalidArgument("truncated \\u escape");
            }
            const unsigned long code =
                std::strtoul(text_.substr(pos_, 4).c_str(), nullptr, 16);
            pos_ += 4;
            // The exporters only escape control characters; anything in
            // the BMP below 0x80 round-trips, others degrade to '?'.
            value.string_ += code < 0x80 ? static_cast<char>(code) : '?';
            break;
          }
          default:
            return Status::InvalidArgument("unknown escape");
        }
      } else {
        value.string_ += c;
      }
    }
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("unterminated string");
    }
    ++pos_;  // closing '"'
    return value;
  }

  Result<JsonValue> ParseNumber() {
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return Status::InvalidArgument("expected a number");
    JsonValue value;
    value.kind_ = JsonValue::Kind::kNumber;
    char* end = nullptr;
    const std::string token = text_.substr(start, pos_ - start);
    value.number_ = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      return Status::InvalidArgument("malformed number: " + token);
    }
    return value;
  }

  Result<JsonValue> ParseBool() {
    JsonValue value;
    value.kind_ = JsonValue::Kind::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      value.boolean_ = true;
      pos_ += 4;
      return value;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      value.boolean_ = false;
      pos_ += 5;
      return value;
    }
    return Status::InvalidArgument("malformed literal");
  }

  Result<JsonValue> ParseNull() {
    if (text_.compare(pos_, 4, "null") != 0) {
      return Status::InvalidArgument("malformed literal");
    }
    pos_ += 4;
    return JsonValue();
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  const std::string& text_;
  size_t pos_ = 0;
};

Result<JsonValue> JsonValue::Parse(const std::string& text) {
  return JsonParser(text).ParseDocument();
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  auto it = object_.find(key);
  return it != object_.end() ? &it->second : nullptr;
}

}  // namespace screp::obs
