#include "obs/trace.h"

#include <fstream>
#include <sstream>

#include "common/logging.h"
#include "obs/json.h"

namespace screp::obs {

Tracer::Tracer(size_t capacity) : ring_(capacity > 0 ? capacity : 1) {}

void Tracer::Add(const TraceSpan& span) {
  for (const Sink& sink : sinks_) sink(span);
  if (!enabled_) return;
  if (size_ < ring_.size()) {
    ring_[(head_ + size_) % ring_.size()] = span;
    ++size_;
    return;
  }
  // Full: overwrite the oldest span.
  ring_[head_] = span;
  head_ = (head_ + 1) % ring_.size();
  ++dropped_;
}

void Tracer::SetProcessName(int32_t pid, std::string name) {
  process_names_[pid] = std::move(name);
}

std::vector<TraceSpan> Tracer::Spans() const {
  std::vector<TraceSpan> spans;
  spans.reserve(size_);
  for (size_t i = 0; i < size_; ++i) {
    spans.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return spans;
}

void Tracer::Clear() {
  head_ = 0;
  size_ = 0;
  dropped_ = 0;
}

std::string Tracer::ToChromeJson() const {
  std::ostringstream out;
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const auto& [pid, name] : process_names_) {
    if (!first) out << ",";
    first = false;
    out << "{\"ph\":\"M\",\"pid\":" << pid
        << ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\""
        << JsonEscape(name) << "\"}}";
  }
  for (size_t i = 0; i < size_; ++i) {
    const TraceSpan& span = ring_[(head_ + i) % ring_.size()];
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"" << JsonEscape(span.name) << "\",\"cat\":\""
        << JsonEscape(span.category)
        << "\",\"ph\":\"X\",\"ts\":" << span.start
        << ",\"dur\":" << span.duration << ",\"pid\":" << span.pid
        << ",\"tid\":" << span.tid << ",\"args\":{\"txn\":" << span.txn;
    if (span.arg_name != nullptr) {
      out << ",\"" << JsonEscape(span.arg_name) << "\":" << span.arg_value;
    }
    out << "}}";
  }
  out << "]}";
  return out.str();
}

Status Tracer::WriteChromeJson(const std::string& path) const {
  std::ofstream file(path, std::ios::trunc);
  if (!file.is_open()) {
    return Status::IOError("cannot open trace output: " + path);
  }
  file << ToChromeJson();
  file.close();
  if (!file.good()) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace screp::obs
