// MetricsRegistry: the system-wide catalog of named instruments.
//
// Three instrument kinds, matching what the middleware needs to expose
// (paper §V is entirely about *where time goes*, so every component
// publishes its internal signals here):
//   - Counter: monotonically increasing event count (certified commits,
//     aborts by reason, dispatches, ...).
//   - Gauge: an instantaneous value, either set by the owning component
//     or computed on demand by a registered callback (queue depths,
//     per-replica version lag V_system - V_local, utilization).
//   - Histogram: a distribution (group-commit batch sizes), reusing the
//     log-bucketed common/stats.h histogram.
//
// Instruments are created on first access and never removed, so a
// component promoted after a failover continues its predecessor's series
// by simply asking for the same names.  The whole registry is
// snapshotable and exportable as JSON.

#ifndef SCREP_OBS_METRICS_REGISTRY_H_
#define SCREP_OBS_METRICS_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/status.h"

namespace screp::obs {

/// Escapes a Prometheus label value (backslash, double quote, newline).
std::string PrometheusEscapeLabel(const std::string& value);
/// Inverse of PrometheusEscapeLabel.
std::string PrometheusUnescapeLabel(const std::string& escaped);

/// A monotonically increasing event count.
class Counter {
 public:
  void Increment(int64_t delta = 1) { value_ += delta; }
  int64_t value() const { return value_; }

 private:
  int64_t value_ = 0;
};

/// An instantaneous value set by its owning component.
class Gauge {
 public:
  void Set(double value) { value_ = value; }
  double value() const { return value_; }

 private:
  double value_ = 0;
};

/// The named-instrument catalog.  Not thread-safe by design: everything
/// runs on the simulator's event loop.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the counter registered under `name`, creating it on first
  /// use.  The pointer stays valid for the registry's lifetime.
  Counter* GetCounter(const std::string& name);

  /// Returns the settable gauge registered under `name`, creating it on
  /// first use.  `name` must not collide with a callback gauge.
  Gauge* GetGauge(const std::string& name);

  /// Returns the histogram registered under `name`, creating it on first
  /// use.
  Histogram* GetHistogram(const std::string& name);

  /// Registers a gauge whose value is computed on demand (polled by the
  /// Sampler and by snapshots).  `name` must be unused.
  void RegisterCallbackGauge(const std::string& name,
                             std::function<double()> fn);

  /// All gauge names (settable + callback), sorted — the sampler's poll
  /// set.
  std::vector<std::string> GaugeNames() const;

  /// Monotone counter bumped whenever an instrument is created or a
  /// callback gauge registered (instruments are never removed).  Pollers
  /// cache resolved instrument handles and rebuild only when this moves,
  /// instead of re-resolving names through the maps every tick.
  uint64_t generation() const { return generation_; }

  /// Visits every gauge in sorted name order.  Exactly one of `gauge` /
  /// `callback` is non-null per visit; both pointers (and `name`) stay
  /// valid for the registry's lifetime.
  void VisitGauges(
      const std::function<void(const std::string& name, const Gauge* gauge,
                               const std::function<double()>* callback)>& fn)
      const;

  /// Visits every counter in sorted name order; pointers stay valid for
  /// the registry's lifetime.
  void VisitCounters(const std::function<void(const std::string& name,
                                              const Counter* counter)>& fn)
      const;

  /// Current value of the gauge `name` (callback gauges are evaluated);
  /// 0 for unknown names.
  double GaugeValue(const std::string& name) const;

  /// All counter names, sorted — the sampler's delta poll set.
  std::vector<std::string> CounterNames() const;

  /// Current value of the counter `name`; 0 for unknown names.
  int64_t CounterValue(const std::string& name) const;

  /// Point-in-time values of every instrument.
  struct Snapshot {
    struct HistogramSummary {
      int64_t count = 0;
      double mean = 0, p50 = 0, p95 = 0, p99 = 0, max = 0;
    };
    std::map<std::string, int64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistogramSummary> histograms;
  };
  Snapshot TakeSnapshot() const;

  /// The snapshot as a JSON object:
  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,...}}}.
  std::string ToJson() const;

  /// The snapshot in Prometheus text exposition format.  Instrument
  /// names carry dots, so each kind is exported as one metric family
  /// (screp_counter / screp_gauge / screp_histogram summaries) with the
  /// original name as an escaped `name` label.
  std::string ToPrometheusText() const;

  /// Parses a ToJson() document back into a snapshot (round-trip for
  /// tests and offline tooling).
  static Result<Snapshot> SnapshotFromJson(const std::string& json);

 private:
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::function<double()>> callback_gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  uint64_t generation_ = 0;
};

}  // namespace screp::obs

#endif  // SCREP_OBS_METRICS_REGISTRY_H_
