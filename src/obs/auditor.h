// Online consistency auditor: a live EventLog sink that incrementally
// re-checks the paper's guarantees while the run is still going, so a
// violation is flagged at the moment it happens — with the full causal
// chain (the offending transaction, its snapshot, the conflicting
// commit) — instead of at end-of-run by the offline checkers.
//
// Checks, in event order:
//  * admission   — a BEGIN must be admitted only once the replica reached
//                  the version tag (V_local >= required).  This is the
//                  implementation invariant everything else rests on; the
//                  test-only ProxyConfig::test_skip_version_check knob
//                  exists precisely to prove this check fires.
//  * route       — the load balancer must never tag a transaction with a
//                  version the certifier has not issued.
//  * total-order — certified commit versions are dense and unique;
//                  snapshots never exceed the latest issued version, and
//                  an update's snapshot precedes its commit version.
//  * apply-order — every replica commits writesets in exactly the
//                  certifier's version order, with no gaps.
//  * fcw         — generalized snapshot isolation first-committer-wins:
//                  no two committed concurrent updates overlap in their
//                  writesets.
//  * definition1 — strong consistency (paper Definition 1), incremental
//                  form: per table, the max commit version among update
//                  transactions acknowledged before T submitted must not
//                  exceed T's snapshot (only for configurations that
//                  promise strong consistency).
//  * definition2 — session consistency (paper Definition 2): the same
//                  condition restricted to T's own session.
//
// The auditor also performs the staleness attribution of the audit
// report: histograms (in the shared MetricsRegistry) of each BEGIN's
// version lag behind the certifier and the virtual-time age of its
// snapshot.  The begin-blocked-time-by-cause histograms are recorded by
// the proxies themselves (they know the wait); everything lands under
// the "staleness." prefix.

#ifndef SCREP_OBS_AUDITOR_H_
#define SCREP_OBS_AUDITOR_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/eventlog.h"
#include "obs/metrics_registry.h"

namespace screp::obs {

/// Registry names of the auditor-owned staleness histograms.
inline constexpr char kVersionLagHistogram[] =
    "staleness.version_lag_at_begin";
inline constexpr char kSnapshotAgeHistogram[] =
    "staleness.snapshot_age_at_begin_us";
/// Prefix of the proxy-recorded blocked-time-by-cause histograms
/// ("staleness.blocked.<cause>_us").
inline constexpr char kBlockedHistogramPrefix[] = "staleness.blocked.";

struct AuditorConfig {
  /// Check Definition 1 (strong consistency).  Off for configurations
  /// that only promise session consistency (SC, bounded staleness).
  bool check_strong = true;
  /// Check Definition 2 (session consistency).  Off for bounded
  /// staleness, which bounds a snapshot's lag behind V_system without
  /// consulting session versions — a session may legally read a snapshot
  /// older than its own last write.
  bool check_session = true;
  /// Violations retained verbatim (the count keeps running past it).
  size_t max_recorded_violations = 100;
};

/// Incremental checker over the event stream.
class Auditor {
 public:
  /// `registry` (may be null) receives the staleness histograms.
  Auditor(AuditorConfig config, MetricsRegistry* registry);

  /// Switches the audit into partitioned-certification mode: commit
  /// versions are dense *per shard* rather than globally, admission /
  /// route / apply-order checks consult the events' per-shard vectors,
  /// and first-committer-wins plus Definitions 1 and 2 are evaluated in
  /// each shard's own version space (`table_to_shard[t]` assigns tables
  /// to shards; a table's versions are only ever compared within its own
  /// shard, where they remain totally ordered).
  void EnableSharding(std::vector<int32_t> table_to_shard, int shard_count);
  bool sharded() const { return shard_count_ > 0; }

  /// The EventLog sink.
  void OnEvent(const Event& event);

  struct Violation {
    std::string check;  ///< "admission", "fcw", "definition1", ...
    TxnId txn = 0;      ///< the offending transaction
    TimePoint at = 0;     ///< virtual time the violation was detected
    std::string detail; ///< full causal chain, human-readable
  };

  bool ok() const { return violation_count_ == 0; }
  /// Violations found so far (capped; see violation_count() for totals).
  const std::vector<Violation>& violations() const { return violations_; }
  int64_t violation_count() const { return violation_count_; }
  int64_t events_consumed() const { return events_; }
  /// Non-vacuous checks evaluated (evidence the audit did something).
  int64_t checks_performed() const { return checks_; }

  /// Latest commit version the auditor has seen certified.
  DbVersion max_commit_version() const { return max_version_; }
  /// Latest certified version of one shard (sharded mode only).
  DbVersion shard_max_commit_version(int32_t shard) const {
    return shard_max_version_[static_cast<size_t>(shard)];
  }

  /// {"ok":...,"events":N,"checks":N,"violations_total":N,
  ///  "violations":[{"check","txn","at","detail"},...]}.
  std::string ToJson() const;

  /// One-line human summary ("audit OK: ..." / "audit FAILED: ...").
  std::string Summary() const;

 private:
  /// One acked committed update writing some table, in ack order; the
  /// stored version is the running prefix max so "latest version
  /// acknowledged before time t" is one binary search.
  struct AckedWrite {
    TimePoint ack_time = 0;
    DbVersion version = 0;  ///< prefix max of commit versions so far
    TxnId txn = 0;          ///< transaction achieving that max
  };
  using AckedWriteLog = std::vector<AckedWrite>;

  /// A committed update retained for first-committer-wins checking.
  struct CommittedUpdate {
    TxnId txn = 0;
    DbVersion snapshot = 0;
    std::vector<std::pair<TableId, int64_t>> keys_written;
  };

  void AddViolation(const char* check, TxnId txn, TimePoint at,
                    std::string detail);
  void OnCertVerdict(const Event& e);
  void OnBegin(const Event& e);
  void OnApply(const Event& e);
  void OnFinished(const Event& e);
  void OnFinishedSharded(const Event& e);
  /// Latest acknowledged (before `deadline`) committed write to `table`
  /// in `log`; nullptr when none.
  static const AckedWrite* LatestAckedBefore(const AckedWriteLog& log,
                                             TimePoint deadline);

  AuditorConfig config_;
  MetricsRegistry* registry_;
  Histogram* version_lag_hist_ = nullptr;
  Histogram* snapshot_age_hist_ = nullptr;

  int64_t events_ = 0;
  int64_t checks_ = 0;
  int64_t violation_count_ = 0;
  std::vector<Violation> violations_;

  DbVersion max_version_ = 0;
  /// commit version -> (txn, certify time); pruned to a recent window.
  std::map<DbVersion, std::pair<TxnId, TimePoint>> certified_;
  /// commit version -> writeset info, for first-committer-wins.
  std::map<DbVersion, CommittedUpdate> committed_updates_;
  /// Per-replica last applied version (apply-order check).
  std::unordered_map<ReplicaId, DbVersion> applied_;
  /// Per-table ack-ordered prefix-max logs (Definition 1).
  std::unordered_map<TableId, AckedWriteLog> acked_writes_;
  /// The same, per session (Definition 2).
  std::unordered_map<SessionId,
                     std::unordered_map<TableId, AckedWriteLog>>
      session_writes_;

  /// Sharded mode (shard_count_ == 0 = single-stream; all unused).  In
  /// sharded mode acked_writes_ / session_writes_ hold *shard-local*
  /// versions, which is sound because each log is per table and a table
  /// never changes shard.
  int shard_count_ = 0;
  std::vector<int32_t> table_to_shard_;
  std::vector<DbVersion> shard_max_version_;
  std::vector<std::map<DbVersion, std::pair<TxnId, TimePoint>>>
      shard_certified_;
  std::vector<std::map<DbVersion, CommittedUpdate>> shard_committed_;
  /// (replica * shard_count + shard) -> last applied shard-local version.
  std::unordered_map<int64_t, DbVersion> shard_applied_;
};

}  // namespace screp::obs

#endif  // SCREP_OBS_AUDITOR_H_
