#include "obs/eventlog.h"

#include <fstream>
#include <sstream>

#include "obs/json.h"

namespace screp::obs {

const char* EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kRoute:
      return "route";
    case EventKind::kBeginAdmitted:
      return "begin";
    case EventKind::kCertVerdict:
      return "cert";
    case EventKind::kApply:
      return "apply";
    case EventKind::kSessionUpdate:
      return "session";
    case EventKind::kTxnFinished:
      return "finish";
    case EventKind::kCrash:
      return "crash";
    case EventKind::kRecover:
      return "recover";
    case EventKind::kFailover:
      return "failover";
    case EventKind::kShed:
      return "shed";
    case EventKind::kTimeout:
      return "timeout";
    case EventKind::kHealth:
      return "health";
  }
  return "?";
}

const char* WaitCauseName(WaitCause cause) {
  switch (cause) {
    case WaitCause::kNone:
      return "none";
    case WaitCause::kSystemVersion:
      return "system_version";
    case WaitCause::kTableVersion:
      return "table_version";
    case WaitCause::kSessionVersion:
      return "session_version";
    case WaitCause::kStalenessBound:
      return "staleness_bound";
    case WaitCause::kEagerGlobal:
      return "eager_global";
  }
  return "?";
}

std::string Event::ToJson() const {
  std::ostringstream out;
  out << "{\"kind\":\"" << EventKindName(kind) << "\",\"at\":" << at;
  if (txn != 0) out << ",\"txn\":" << txn;
  if (session != 0) out << ",\"session\":" << session;
  if (replica != kNoReplica) out << ",\"replica\":" << replica;
  switch (kind) {
    case EventKind::kRoute:
      out << ",\"required\":" << required_version
          << ",\"v_system\":" << satisfied_version;
      break;
    case EventKind::kBeginAdmitted:
      out << ",\"required\":" << required_version
          << ",\"satisfied\":" << satisfied_version << ",\"cause\":\""
          << WaitCauseName(wait_cause) << "\",\"wait\":" << wait;
      break;
    case EventKind::kCertVerdict:
      out << ",\"committed\":" << (committed ? "true" : "false")
          << ",\"snapshot\":" << snapshot;
      if (committed) {
        out << ",\"version\":" << commit_version;
      } else {
        out << ",\"reason\":\"" << JsonEscape(detail) << "\"";
        if (conflict_version != kNoVersion) {
          out << ",\"conflict_version\":" << conflict_version
              << ",\"conflict_txn\":" << conflict_txn;
        }
      }
      break;
    case EventKind::kApply:
      out << ",\"version\":" << commit_version
          << ",\"local\":" << (local ? "true" : "false");
      break;
    case EventKind::kSessionUpdate:
      out << ",\"version\":" << satisfied_version;
      break;
    case EventKind::kTxnFinished: {
      out << ",\"committed\":" << (committed ? "true" : "false")
          << ",\"read_only\":" << (read_only ? "true" : "false")
          << ",\"snapshot\":" << snapshot << ",\"submit\":" << submit_time
          << ",\"start\":" << start_time;
      if (commit_version != kNoVersion) out << ",\"version\":" << commit_version;
      auto tables = [&out](const char* key, const std::vector<TableId>& ts) {
        out << ",\"" << key << "\":[";
        for (size_t i = 0; i < ts.size(); ++i) {
          if (i > 0) out << ",";
          out << ts[i];
        }
        out << "]";
      };
      tables("table_set", table_set);
      tables("tables_written", tables_written);
      out << ",\"keys_written\":[";
      for (size_t i = 0; i < keys_written.size(); ++i) {
        if (i > 0) out << ",";
        out << "[" << keys_written[i].first << "," << keys_written[i].second
            << "]";
      }
      out << "]";
      break;
    }
    case EventKind::kCrash:
    case EventKind::kRecover:
    case EventKind::kFailover:
      out << ",\"component\":\"" << JsonEscape(detail) << "\"";
      break;
    case EventKind::kShed:
      out << ",\"where\":\"" << JsonEscape(detail) << "\"";
      break;
    case EventKind::kTimeout:
      out << ",\"waited\":" << wait;
      break;
    case EventKind::kHealth:
      out << ",\"change\":\"" << JsonEscape(detail) << "\"";
      break;
  }
  // Sharded-configuration fields: all empty at K = 1, so omission keeps
  // single-stream JSONL output byte-identical.
  auto shard_pairs =
      [&out](const char* key,
             const std::vector<std::pair<int32_t, DbVersion>>& pairs) {
        if (pairs.empty()) return;
        out << ",\"" << key << "\":[";
        for (size_t i = 0; i < pairs.size(); ++i) {
          if (i > 0) out << ",";
          out << "[" << pairs[i].first << "," << pairs[i].second << "]";
        }
        out << "]";
      };
  shard_pairs("shard_versions", shard_versions);
  shard_pairs("shard_snapshots", shard_snapshots);
  shard_pairs("shard_required", shard_required);
  out << "}";
  return out.str();
}

EventLog::EventLog(size_t capacity) : ring_(capacity > 0 ? capacity : 1) {}

void EventLog::Append(Event event) {
  if (!enabled_) return;
  ++appended_;
  for (const Sink& sink : sinks_) sink(event);
  if (size_ < ring_.size()) {
    ring_[(head_ + size_) % ring_.size()] = std::move(event);
    ++size_;
    return;
  }
  ring_[head_] = std::move(event);
  head_ = (head_ + 1) % ring_.size();
  ++dropped_;
}

std::vector<Event> EventLog::Events() const {
  std::vector<Event> events;
  events.reserve(size_);
  for (size_t i = 0; i < size_; ++i) {
    events.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return events;
}

std::string EventLog::ToJsonl() const {
  std::string out;
  for (size_t i = 0; i < size_; ++i) {
    out += ring_[(head_ + i) % ring_.size()].ToJson();
    out += '\n';
  }
  return out;
}

Status EventLog::WriteJsonl(const std::string& path) const {
  std::ofstream file(path, std::ios::trunc);
  if (!file.is_open()) {
    return Status::IOError("cannot open event-log output: " + path);
  }
  file << ToJsonl();
  file.close();
  if (!file.good()) return Status::IOError("write failed: " + path);
  return Status::OK();
}

History EventLog::ReplayHistory() const {
  History history;
  for (size_t i = 0; i < size_; ++i) {
    const Event& e = ring_[(head_ + i) % ring_.size()];
    if (e.kind != EventKind::kTxnFinished) continue;
    TxnRecord record;
    record.id = e.txn;
    record.session = e.session;
    record.replica = e.replica;
    record.submit_time = e.submit_time;
    record.start_time = e.start_time;
    record.ack_time = e.at;
    record.snapshot = e.snapshot;
    record.commit_version = e.commit_version;
    record.committed = e.committed;
    record.read_only = e.read_only;
    record.table_set = e.table_set;
    record.tables_written = e.tables_written;
    record.keys_written = e.keys_written;
    history.Add(std::move(record));
  }
  return history;
}

}  // namespace screp::obs
