#include "obs/sampler.h"

#include <cstdio>
#include <sstream>

#include "common/logging.h"
#include "obs/json.h"

namespace screp::obs {
namespace {

/// Appends a series under its JSON key, emitting null for the slots from
/// before the series existed.
void AppendSeriesJson(std::ostringstream& out, const std::string& name,
                      const std::vector<double>& values, size_t start) {
  out << "\"" << JsonEscape(name) << "\":[";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out << ",";
    if (i < start) {
      out << "null";
      continue;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", values[i]);
    out << buf;
  }
  out << "]";
}

}  // namespace

Sampler::Sampler(runtime::Runtime* rt, MetricsRegistry* registry)
    : rt_(rt), registry_(registry) {}

void Sampler::Start(Duration period) {
  SCREP_CHECK_MSG(period > 0, "sampler period must be positive");
  SCREP_CHECK_MSG(!running_, "sampler already running");
  period_ = period;
  running_ = true;
  rt_->Schedule(period_, [this]() { Tick(); });
}

void Sampler::RebuildPollSet() {
  polled_gauges_.clear();
  polled_counters_.clear();
  registry_->VisitGauges([this](const std::string& name, const Gauge* gauge,
                                const std::function<double()>* callback) {
    auto [it, inserted] = series_.try_emplace(name);
    // A gauge registered mid-run starts with zeros so every series has
    // one value per timestamp; series_start_ remembers where the real
    // values begin (the JSON export nulls the padding).
    if (inserted) series_start_[name] = timestamps_.size() - 1;
    polled_gauges_.push_back({&it->first, gauge, callback, &it->second});
  });
  registry_->VisitCounters([this](const std::string& name,
                                  const Counter* counter) {
    auto [it, inserted] = counter_deltas_.try_emplace(name);
    if (inserted) series_start_[name] = timestamps_.size() - 1;
    // The first delta of a counter covers everything it counted so far.
    auto [prev_it, unused] = counter_prev_.try_emplace(name, 0);
    (void)unused;
    polled_counters_.push_back(
        {&it->first, counter, &it->second, &prev_it->second});
  });
  poll_generation_ = registry_->generation();
}

void Sampler::Tick() {
  if (!running_) return;
  timestamps_.push_back(rt_->Now());
  if (poll_generation_ != registry_->generation()) RebuildPollSet();
  // The per-name sink maps are only materialized when someone listens.
  const bool feed_sinks = !sinks_.empty();
  std::map<std::string, double> gauges;
  std::map<std::string, double> deltas;
  for (const PolledGauge& pg : polled_gauges_) {
    std::vector<double>& values = *pg.values;
    while (values.size() + 1 < timestamps_.size()) values.push_back(0);
    const double value =
        pg.gauge != nullptr ? pg.gauge->value() : (*pg.callback)();
    values.push_back(value);
    if (feed_sinks) gauges[*pg.name] = value;
  }
  for (const PolledCounter& pc : polled_counters_) {
    std::vector<double>& values = *pc.values;
    while (values.size() + 1 < timestamps_.size()) values.push_back(0);
    const int64_t current = pc.counter->value();
    const int64_t delta = current - *pc.prev;
    *pc.prev = current;
    values.push_back(static_cast<double>(delta));
    if (feed_sinks) deltas[*pc.name] = static_cast<double>(delta);
  }
  const TimePoint at = rt_->Now();
  for (const Sink& sink : sinks_) sink(at, period_, gauges, deltas);
  rt_->Schedule(period_, [this]() { Tick(); });
}

size_t Sampler::SeriesStart(const std::string& name) const {
  const auto it = series_start_.find(name);
  return it != series_start_.end() ? it->second : timestamps_.size();
}

std::string Sampler::ToJson() const {
  std::ostringstream out;
  out << "{\"period_us\":" << period_ << ",\"timestamps\":[";
  for (size_t i = 0; i < timestamps_.size(); ++i) {
    if (i > 0) out << ",";
    out << timestamps_[i];
  }
  out << "],\"series\":{";
  bool first = true;
  for (const auto& [name, values] : series_) {
    if (!first) out << ",";
    first = false;
    AppendSeriesJson(out, name, values, SeriesStart(name));
  }
  out << "},\"counter_deltas\":{";
  first = true;
  for (const auto& [name, values] : counter_deltas_) {
    if (!first) out << ",";
    first = false;
    AppendSeriesJson(out, name, values, SeriesStart(name));
  }
  out << "}}";
  return out.str();
}

}  // namespace screp::obs
