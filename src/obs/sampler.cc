#include "obs/sampler.h"

#include <cstdio>
#include <sstream>

#include "common/logging.h"
#include "obs/json.h"

namespace screp::obs {
namespace {

/// Appends a series under its JSON key, emitting null for the slots from
/// before the series existed.
void AppendSeriesJson(std::ostringstream& out, const std::string& name,
                      const std::vector<double>& values, size_t start) {
  out << "\"" << JsonEscape(name) << "\":[";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out << ",";
    if (i < start) {
      out << "null";
      continue;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", values[i]);
    out << buf;
  }
  out << "]";
}

}  // namespace

Sampler::Sampler(Simulator* sim, MetricsRegistry* registry)
    : sim_(sim), registry_(registry) {}

void Sampler::Start(SimTime period) {
  SCREP_CHECK_MSG(period > 0, "sampler period must be positive");
  SCREP_CHECK_MSG(!running_, "sampler already running");
  period_ = period;
  running_ = true;
  sim_->Schedule(period_, [this]() { Tick(); });
}

void Sampler::Tick() {
  if (!running_) return;
  timestamps_.push_back(sim_->Now());
  std::map<std::string, double> gauges;
  std::map<std::string, double> deltas;
  for (const std::string& name : registry_->GaugeNames()) {
    std::vector<double>& values = series_[name];
    // A gauge registered mid-run starts with zeros so every series has
    // one value per timestamp; series_start_ remembers where the real
    // values begin (the JSON export nulls the padding).
    if (values.empty()) series_start_[name] = timestamps_.size() - 1;
    while (values.size() + 1 < timestamps_.size()) values.push_back(0);
    const double value = registry_->GaugeValue(name);
    values.push_back(value);
    gauges[name] = value;
  }
  for (const std::string& name : registry_->CounterNames()) {
    std::vector<double>& values = counter_deltas_[name];
    if (values.empty()) series_start_[name] = timestamps_.size() - 1;
    while (values.size() + 1 < timestamps_.size()) values.push_back(0);
    const int64_t current = registry_->CounterValue(name);
    const auto prev = counter_prev_.find(name);
    // The first delta of a counter covers everything it counted so far.
    const int64_t delta =
        current - (prev != counter_prev_.end() ? prev->second : 0);
    counter_prev_[name] = current;
    values.push_back(static_cast<double>(delta));
    deltas[name] = static_cast<double>(delta);
  }
  const SimTime at = sim_->Now();
  for (const Sink& sink : sinks_) sink(at, period_, gauges, deltas);
  sim_->Schedule(period_, [this]() { Tick(); });
}

size_t Sampler::SeriesStart(const std::string& name) const {
  const auto it = series_start_.find(name);
  return it != series_start_.end() ? it->second : timestamps_.size();
}

std::string Sampler::ToJson() const {
  std::ostringstream out;
  out << "{\"period_us\":" << period_ << ",\"timestamps\":[";
  for (size_t i = 0; i < timestamps_.size(); ++i) {
    if (i > 0) out << ",";
    out << timestamps_[i];
  }
  out << "],\"series\":{";
  bool first = true;
  for (const auto& [name, values] : series_) {
    if (!first) out << ",";
    first = false;
    AppendSeriesJson(out, name, values, SeriesStart(name));
  }
  out << "},\"counter_deltas\":{";
  first = true;
  for (const auto& [name, values] : counter_deltas_) {
    if (!first) out << ",";
    first = false;
    AppendSeriesJson(out, name, values, SeriesStart(name));
  }
  out << "}}";
  return out.str();
}

}  // namespace screp::obs
