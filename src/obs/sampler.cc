#include "obs/sampler.h"

#include <cstdio>
#include <sstream>

#include "common/logging.h"
#include "obs/json.h"

namespace screp::obs {

Sampler::Sampler(Simulator* sim, MetricsRegistry* registry)
    : sim_(sim), registry_(registry) {}

void Sampler::Start(SimTime period) {
  SCREP_CHECK_MSG(period > 0, "sampler period must be positive");
  SCREP_CHECK_MSG(!running_, "sampler already running");
  period_ = period;
  running_ = true;
  sim_->Schedule(period_, [this]() { Tick(); });
}

void Sampler::Tick() {
  if (!running_) return;
  timestamps_.push_back(sim_->Now());
  for (const std::string& name : registry_->GaugeNames()) {
    std::vector<double>& values = series_[name];
    // A gauge registered mid-run starts with zeros so every series has
    // one value per timestamp.
    while (values.size() + 1 < timestamps_.size()) values.push_back(0);
    values.push_back(registry_->GaugeValue(name));
  }
  sim_->Schedule(period_, [this]() { Tick(); });
}

std::string Sampler::ToJson() const {
  std::ostringstream out;
  out << "{\"period_us\":" << period_ << ",\"timestamps\":[";
  for (size_t i = 0; i < timestamps_.size(); ++i) {
    if (i > 0) out << ",";
    out << timestamps_[i];
  }
  out << "],\"series\":{";
  bool first = true;
  for (const auto& [name, values] : series_) {
    if (!first) out << ",";
    first = false;
    out << "\"" << JsonEscape(name) << "\":[";
    for (size_t i = 0; i < values.size(); ++i) {
      if (i > 0) out << ",";
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g", values[i]);
      out << buf;
    }
    out << "]";
  }
  out << "}}";
  return out.str();
}

}  // namespace screp::obs
