#include "obs/auditor.h"

#include <algorithm>
#include <sstream>

#include "obs/json.h"

namespace screp::obs {

namespace {
/// Retained certified-version / committed-update window.  Certify events
/// and the writesets they carry are only needed as long as some running
/// transaction's snapshot can still reach back to them, which in practice
/// is a few thousand versions; the window is generous so duplicate
/// verdicts re-announced after a certifier failover are still resolvable.
constexpr size_t kVersionWindow = 1 << 18;

/// Looks one shard's version up in a sparse (shard, version) event
/// vector; 0 when absent.  (Local clone of ShardVersionOf so the obs
/// layer stays independent of the replication library.)
DbVersion ShardEntry(
    const std::vector<std::pair<int32_t, DbVersion>>& versions,
    int32_t shard) {
  for (const auto& [s, v] : versions) {
    if (s == shard) return v;
  }
  return 0;
}
}  // namespace

Auditor::Auditor(AuditorConfig config, MetricsRegistry* registry)
    : config_(config), registry_(registry) {
  if (registry_ != nullptr) {
    version_lag_hist_ = registry_->GetHistogram(kVersionLagHistogram);
    snapshot_age_hist_ = registry_->GetHistogram(kSnapshotAgeHistogram);
  }
}

void Auditor::EnableSharding(std::vector<int32_t> table_to_shard,
                             int shard_count) {
  shard_count_ = shard_count;
  table_to_shard_ = std::move(table_to_shard);
  shard_max_version_.assign(static_cast<size_t>(shard_count), 0);
  shard_certified_.assign(static_cast<size_t>(shard_count), {});
  shard_committed_.assign(static_cast<size_t>(shard_count), {});
}

void Auditor::AddViolation(const char* check, TxnId txn, TimePoint at,
                           std::string detail) {
  ++violation_count_;
  if (violations_.size() < config_.max_recorded_violations) {
    violations_.push_back(Violation{check, txn, at, std::move(detail)});
  }
}

void Auditor::OnEvent(const Event& event) {
  ++events_;
  switch (event.kind) {
    case EventKind::kRoute:
      // The tag the LB hands out is derived from acknowledged commits, so
      // it can never name a version the certifier has not issued.
      if (sharded()) {
        for (const auto& [s, req] : event.shard_required) {
          ++checks_;
          if (req <= shard_max_version_[static_cast<size_t>(s)]) continue;
          std::ostringstream detail;
          detail << "LB tagged txn " << event.txn << " with shard " << s
                 << " required version " << req
                 << " but that lane has only issued up to "
                 << shard_max_version_[static_cast<size_t>(s)];
          AddViolation("route", event.txn, event.at, detail.str());
        }
        break;
      }
      ++checks_;
      if (event.required_version > max_version_) {
        std::ostringstream detail;
        detail << "LB tagged txn " << event.txn << " with required version "
               << event.required_version << " but the certifier has only "
               << "issued up to " << max_version_;
        AddViolation("route", event.txn, event.at, detail.str());
      }
      break;
    case EventKind::kBeginAdmitted:
      OnBegin(event);
      break;
    case EventKind::kCertVerdict:
      OnCertVerdict(event);
      break;
    case EventKind::kApply:
      OnApply(event);
      break;
    case EventKind::kTxnFinished:
      OnFinished(event);
      break;
    case EventKind::kSessionUpdate:
    case EventKind::kCrash:
    case EventKind::kRecover:
    case EventKind::kFailover:
    case EventKind::kShed:
    case EventKind::kTimeout:
    case EventKind::kHealth:
      // Overload shedding, client timeouts and health-state changes never
      // commit anything, so there is nothing to cross-check — consistency
      // is judged on the transactions that do finish.
      break;
  }
}

void Auditor::OnCertVerdict(const Event& e) {
  if (!e.committed) return;
  if (sharded()) {
    // Totality is shard-local: each lane issues its own dense version
    // sequence, and a cross-shard commit takes the next version in every
    // touched lane.
    for (const auto& [s, v] : e.shard_versions) {
      ++checks_;
      DbVersion& max = shard_max_version_[static_cast<size_t>(s)];
      auto& certified = shard_certified_[static_cast<size_t>(s)];
      if (v == max + 1) {
        max = v;
        certified[v] = {e.txn, e.at};
        while (certified.size() > kVersionWindow) {
          certified.erase(certified.begin());
        }
        continue;
      }
      if (v <= max) {
        auto it = certified.find(v);
        if (it == certified.end() || it->second.first == e.txn) continue;
        std::ostringstream detail;
        detail << "shard " << s << " commit version " << v
               << " issued twice: txn " << it->second.first << " at t="
               << it->second.second << " and txn " << e.txn;
        AddViolation("total-order", e.txn, e.at, detail.str());
        continue;
      }
      std::ostringstream detail;
      detail << "shard " << s << " commit version " << v << " for txn "
             << e.txn << " skips ahead of " << max
             << " (lane versions not dense)";
      AddViolation("total-order", e.txn, e.at, detail.str());
      max = v;  // resync so one gap does not cascade
      certified[v] = {e.txn, e.at};
    }
    return;
  }
  ++checks_;
  const DbVersion v = e.commit_version;
  if (v == max_version_ + 1) {
    max_version_ = v;
    certified_[v] = {e.txn, e.at};
    while (certified_.size() > kVersionWindow) {
      certified_.erase(certified_.begin());
    }
    return;
  }
  if (v <= max_version_) {
    // A certifier promoted mid-failover re-certifies forwarded writesets
    // it had already decided; the re-announcement names the same txn and
    // version and is benign.  A *different* txn claiming an issued
    // version is a broken total order.
    auto it = certified_.find(v);
    if (it == certified_.end() || it->second.first == e.txn) return;
    std::ostringstream detail;
    detail << "commit version " << v << " issued twice: txn "
           << it->second.first << " at t=" << it->second.second
           << " and txn " << e.txn;
    AddViolation("total-order", e.txn, e.at, detail.str());
    return;
  }
  std::ostringstream detail;
  detail << "commit version " << v << " for txn " << e.txn
         << " skips ahead of " << max_version_ << " (versions not dense)";
  AddViolation("total-order", e.txn, e.at, detail.str());
  max_version_ = v;  // resync so one gap does not cascade
  certified_[v] = {e.txn, e.at};
}

void Auditor::OnBegin(const Event& e) {
  if (sharded()) {
    // Admission is per shard: every required (shard, version) pair must
    // be covered by the replica's published version of that stream.
    for (const auto& [s, req] : e.shard_required) {
      ++checks_;
      const DbVersion snap = ShardEntry(e.shard_snapshots, s);
      if (snap >= req) continue;
      std::ostringstream detail;
      detail << "txn " << e.txn << " admitted at replica " << e.replica
             << " with shard " << s << " published only to " << snap
             << ", below its version tag " << req << " ("
             << WaitCauseName(e.wait_cause) << " sync)";
      AddViolation("admission", e.txn, e.at, detail.str());
    }
    if (version_lag_hist_ != nullptr) {
      // Staleness attribution: the most-behind touched stream, with the
      // snapshot age read off that shard's certify log.
      DbVersion lag = 0;
      double age = 0;
      for (const auto& [s, snap] : e.shard_snapshots) {
        const DbVersion max = shard_max_version_[static_cast<size_t>(s)];
        if (max <= snap || max - snap < lag) continue;
        lag = max - snap;
        auto it = shard_certified_[static_cast<size_t>(s)].find(snap + 1);
        age = it == shard_certified_[static_cast<size_t>(s)].end()
                  ? 0
                  : static_cast<double>(e.at - it->second.second);
      }
      version_lag_hist_->Add(static_cast<double>(lag));
      snapshot_age_hist_->Add(age);
    }
    return;
  }
  ++checks_;
  if (e.satisfied_version < e.required_version) {
    std::ostringstream detail;
    detail << "txn " << e.txn << " admitted at replica " << e.replica
           << " with V_local=" << e.satisfied_version
           << " below its version tag " << e.required_version << " ("
           << WaitCauseName(e.wait_cause) << " sync)";
    AddViolation("admission", e.txn, e.at, detail.str());
  }
  if (version_lag_hist_ != nullptr) {
    const DbVersion lag = max_version_ > e.satisfied_version
                              ? max_version_ - e.satisfied_version
                              : 0;
    version_lag_hist_->Add(static_cast<double>(lag));
    // Age of the snapshot: how long ago the first version this BEGIN is
    // missing was certified (0 when fully fresh).
    double age = 0;
    if (e.satisfied_version < max_version_) {
      auto it = certified_.find(e.satisfied_version + 1);
      if (it != certified_.end()) {
        age = static_cast<double>(e.at - it->second.second);
      }
    }
    snapshot_age_hist_->Add(age);
  }
}

void Auditor::OnApply(const Event& e) {
  if (sharded()) {
    // Each (replica, hosted shard) pair is its own dense apply stream.
    for (const auto& [s, v] : e.shard_versions) {
      ++checks_;
      const int64_t key = static_cast<int64_t>(e.replica) * shard_count_ + s;
      DbVersion& last = shard_applied_[key];
      if (v != last + 1) {
        std::ostringstream detail;
        detail << "replica " << e.replica << " applied shard " << s
               << " version " << v << " after " << last << " (expected "
               << (last + 1) << "): stream out of certification order";
        AddViolation("apply-order", e.txn, e.at, detail.str());
      }
      last = std::max(last, v);
    }
    return;
  }
  ++checks_;
  DbVersion& last = applied_[e.replica];
  if (e.commit_version != last + 1) {
    std::ostringstream detail;
    detail << "replica " << e.replica << " applied version "
           << e.commit_version << " after " << last << " (expected "
           << (last + 1) << "): writesets out of certification order";
    AddViolation("apply-order", e.txn, e.at, detail.str());
  }
  last = std::max(last, e.commit_version);
}

const Auditor::AckedWrite* Auditor::LatestAckedBefore(
    const AckedWriteLog& log, TimePoint deadline) {
  // Entries whose writer was acknowledged at or before `deadline`
  // (matching the offline checker's "ack_time > submit_time" exclusion).
  auto it = std::upper_bound(
      log.begin(), log.end(), deadline,
      [](TimePoint t, const AckedWrite& w) { return t < w.ack_time; });
  if (it == log.begin()) return nullptr;
  return &*(it - 1);
}

void Auditor::OnFinished(const Event& e) {
  if (!e.committed) return;
  if (sharded()) {
    OnFinishedSharded(e);
    return;
  }

  if (e.snapshot > max_version_) {
    std::ostringstream detail;
    detail << "txn " << e.txn << " read snapshot " << e.snapshot
           << " beyond the last certified version " << max_version_;
    AddViolation("total-order", e.txn, e.at, detail.str());
  }

  const bool is_update = !e.read_only && e.commit_version != kNoVersion;
  if (is_update) {
    ++checks_;
    if (e.snapshot >= e.commit_version) {
      std::ostringstream detail;
      detail << "txn " << e.txn << " snapshot " << e.snapshot
             << " not before its commit version " << e.commit_version;
      AddViolation("total-order", e.txn, e.at, detail.str());
    }
    // First-committer-wins: any committed update in (snapshot, commit)
    // is concurrent with this one; their writesets must not overlap.
    for (auto it = committed_updates_.upper_bound(e.snapshot);
         it != committed_updates_.end() && it->first < e.commit_version;
         ++it) {
      ++checks_;
      const CommittedUpdate& prior = it->second;
      for (const auto& key : e.keys_written) {
        if (std::find(prior.keys_written.begin(), prior.keys_written.end(),
                      key) == prior.keys_written.end()) {
          continue;
        }
        std::ostringstream detail;
        detail << "concurrent txns " << prior.txn << " @" << it->first
               << " and " << e.txn << " @" << e.commit_version
               << " (snapshot " << e.snapshot << ") both wrote table "
               << key.first << " key " << key.second
               << ": first-committer-wins violated";
        AddViolation("fcw", e.txn, e.at, detail.str());
        break;
      }
    }
  }

  // Definitions 1 and 2: per accessed table, the latest committed update
  // acknowledged before this transaction was submitted must be within
  // its snapshot.
  auto check_tables = [&](const std::unordered_map<TableId, AckedWriteLog>&
                              logs,
                          const char* check, const char* scope) {
    for (TableId table : e.table_set) {
      auto log_it = logs.find(table);
      if (log_it == logs.end()) continue;
      ++checks_;
      const AckedWrite* w = LatestAckedBefore(log_it->second, e.submit_time);
      if (w == nullptr || e.snapshot >= w->version) continue;
      std::ostringstream detail;
      detail << "txn " << e.txn << " (snapshot " << e.snapshot
             << ", submitted at t=" << e.submit_time << ") misses " << scope
             << "txn " << w->txn << " @" << w->version
             << " acked at t=" << w->ack_time << " writing table " << table;
      AddViolation(check, e.txn, e.at, detail.str());
    }
  };
  if (config_.check_strong) {
    check_tables(acked_writes_, "definition1", "");
  }
  if (config_.check_session) {
    auto session_it = session_writes_.find(e.session);
    if (session_it != session_writes_.end()) {
      check_tables(session_it->second, "definition2", "own session's ");
    }
  }

  if (is_update) {
    committed_updates_[e.commit_version] =
        CommittedUpdate{e.txn, e.snapshot, e.keys_written};
    while (committed_updates_.size() > kVersionWindow) {
      committed_updates_.erase(committed_updates_.begin());
    }
    // This acknowledgment extends the per-table prefix-max logs.  Finish
    // events arrive in ack order (simulator time is monotone), so
    // appending keeps each log sorted by ack_time.
    auto extend = [&](std::unordered_map<TableId, AckedWriteLog>& logs) {
      for (TableId table : e.tables_written) {
        AckedWriteLog& log = logs[table];
        DbVersion version = e.commit_version;
        TxnId txn = e.txn;
        if (!log.empty() && log.back().version > version) {
          version = log.back().version;
          txn = log.back().txn;
        }
        log.push_back(AckedWrite{e.at, version, txn});
      }
    };
    extend(acked_writes_);
    extend(session_writes_[e.session]);
  }
}

void Auditor::OnFinishedSharded(const Event& e) {
  // Per-shard snapshot sanity: no stream can be read past what its lane
  // has certified.
  for (const auto& [s, snap] : e.shard_snapshots) {
    ++checks_;
    if (snap <= shard_max_version_[static_cast<size_t>(s)]) continue;
    std::ostringstream detail;
    detail << "txn " << e.txn << " read shard " << s << " snapshot " << snap
           << " beyond that lane's last certified version "
           << shard_max_version_[static_cast<size_t>(s)];
    AddViolation("total-order", e.txn, e.at, detail.str());
  }

  const bool is_update = !e.read_only && !e.shard_versions.empty();
  if (is_update) {
    for (const auto& [s, cv] : e.shard_versions) {
      ++checks_;
      const DbVersion snap = ShardEntry(e.shard_snapshots, s);
      if (snap >= cv) {
        std::ostringstream detail;
        detail << "txn " << e.txn << " shard " << s << " snapshot " << snap
               << " not before its shard commit version " << cv;
        AddViolation("total-order", e.txn, e.at, detail.str());
      }
      // First-committer-wins within the shard: committed updates in this
      // lane's (snapshot, commit) interval are concurrent with this one;
      // the keys they wrote in this shard must not overlap ours.
      auto& committed = shard_committed_[static_cast<size_t>(s)];
      for (auto it = committed.upper_bound(snap);
           it != committed.end() && it->first < cv; ++it) {
        ++checks_;
        const CommittedUpdate& prior = it->second;
        for (const auto& key : e.keys_written) {
          if (table_to_shard_[static_cast<size_t>(key.first)] != s) continue;
          if (std::find(prior.keys_written.begin(), prior.keys_written.end(),
                        key) == prior.keys_written.end()) {
            continue;
          }
          std::ostringstream detail;
          detail << "concurrent txns " << prior.txn << " @shard" << s << ":"
                 << it->first << " and " << e.txn << " @shard" << s << ":"
                 << cv << " (shard snapshot " << snap << ") both wrote table "
                 << key.first << " key " << key.second
                 << ": first-committer-wins violated";
          AddViolation("fcw", e.txn, e.at, detail.str());
          break;
        }
      }
    }
  }

  // Definitions 1 and 2 in shard-local version spaces: per accessed
  // table, the latest acknowledged committed update must be within the
  // snapshot this transaction read of *that table's* shard.
  auto check_tables = [&](const std::unordered_map<TableId, AckedWriteLog>&
                              logs,
                          const char* check, const char* scope) {
    for (TableId table : e.table_set) {
      auto log_it = logs.find(table);
      if (log_it == logs.end()) continue;
      ++checks_;
      const AckedWrite* w = LatestAckedBefore(log_it->second, e.submit_time);
      if (w == nullptr) continue;
      const int32_t s = table_to_shard_[static_cast<size_t>(table)];
      const DbVersion snap = ShardEntry(e.shard_snapshots, s);
      if (snap >= w->version) continue;
      std::ostringstream detail;
      detail << "txn " << e.txn << " (shard " << s << " snapshot " << snap
             << ", submitted at t=" << e.submit_time << ") misses " << scope
             << "txn " << w->txn << " @shard" << s << ":" << w->version
             << " acked at t=" << w->ack_time << " writing table " << table;
      AddViolation(check, e.txn, e.at, detail.str());
    }
  };
  if (config_.check_strong) {
    check_tables(acked_writes_, "definition1", "");
  }
  if (config_.check_session) {
    auto session_it = session_writes_.find(e.session);
    if (session_it != session_writes_.end()) {
      check_tables(session_it->second, "definition2", "own session's ");
    }
  }

  if (is_update) {
    for (const auto& [s, cv] : e.shard_versions) {
      std::vector<std::pair<TableId, int64_t>> shard_keys;
      for (const auto& key : e.keys_written) {
        if (table_to_shard_[static_cast<size_t>(key.first)] == s) {
          shard_keys.push_back(key);
        }
      }
      auto& committed = shard_committed_[static_cast<size_t>(s)];
      committed[cv] = CommittedUpdate{e.txn, ShardEntry(e.shard_snapshots, s),
                                      std::move(shard_keys)};
      while (committed.size() > kVersionWindow) {
        committed.erase(committed.begin());
      }
    }
    // Extend the per-table logs with the written table's shard-local
    // version; each table's log stays internally comparable because a
    // table never changes shard.
    auto extend = [&](std::unordered_map<TableId, AckedWriteLog>& logs) {
      for (TableId table : e.tables_written) {
        AckedWriteLog& log = logs[table];
        DbVersion version = ShardEntry(
            e.shard_versions, table_to_shard_[static_cast<size_t>(table)]);
        TxnId txn = e.txn;
        if (!log.empty() && log.back().version > version) {
          version = log.back().version;
          txn = log.back().txn;
        }
        log.push_back(AckedWrite{e.at, version, txn});
      }
    };
    extend(acked_writes_);
    extend(session_writes_[e.session]);
  }
}

std::string Auditor::ToJson() const {
  std::ostringstream out;
  out << "{\"ok\":" << (ok() ? "true" : "false")
      << ",\"events\":" << events_ << ",\"checks\":" << checks_
      << ",\"max_commit_version\":" << max_version_;
  if (sharded()) {
    out << ",\"shard_max_commit_versions\":[";
    for (int s = 0; s < shard_count_; ++s) {
      if (s > 0) out << ",";
      out << shard_max_version_[static_cast<size_t>(s)];
    }
    out << "]";
  }
  out << ",\"violations_total\":" << violation_count_ << ",\"violations\":[";
  for (size_t i = 0; i < violations_.size(); ++i) {
    const Violation& v = violations_[i];
    if (i > 0) out << ",";
    out << "{\"check\":\"" << JsonEscape(v.check) << "\",\"txn\":" << v.txn
        << ",\"at\":" << v.at << ",\"detail\":\"" << JsonEscape(v.detail)
        << "\"}";
  }
  out << "]}";
  return out.str();
}

std::string Auditor::Summary() const {
  std::ostringstream out;
  if (ok()) {
    out << "audit OK: " << events_ << " events, " << checks_
        << " checks, no violations";
  } else {
    out << "audit FAILED: " << violation_count_ << " violation(s)";
    if (!violations_.empty()) {
      out << "; first: [" << violations_.front().check << "] "
          << violations_.front().detail;
    }
  }
  return out.str();
}

}  // namespace screp::obs
