// The observability facade owned by ReplicatedSystem: one MetricsRegistry,
// one span Tracer and one gauge Sampler per system, handed to every
// middleware component at wiring time.
//
// Everything is off by default (ObsConfig{}) and the instrumentation in
// the components is null-/enabled-guarded, so the default configuration
// adds nothing to a run and never perturbs virtual-time results.

#ifndef SCREP_OBS_OBSERVABILITY_H_
#define SCREP_OBS_OBSERVABILITY_H_

#include <memory>
#include <string>

#include "common/sim_time.h"
#include "common/status.h"
#include "obs/auditor.h"
#include "obs/eventlog.h"
#include "obs/health.h"
#include "obs/metrics_registry.h"
#include "obs/profiler.h"
#include "obs/sampler.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "runtime/runtime.h"

namespace screp::obs {

/// What to collect during a run.
struct ObsConfig {
  /// Record per-transaction spans into the trace ring buffer.
  bool tracing = false;
  /// Span ring-buffer capacity (oldest spans evicted beyond it).
  size_t trace_capacity = 1 << 16;
  /// Gauge sampling period (0 = sampler off).
  Duration sample_period = 0;
  /// Record middleware decisions into the structured event log.
  bool event_log = false;
  /// Event ring-buffer capacity (oldest events evicted beyond it; live
  /// sinks — the auditor — still see every event).
  size_t event_log_capacity = 1 << 16;
  /// Attach the online consistency auditor to the event stream (implies
  /// event logging).
  bool audit = false;
  /// Attach the critical-path profiler to the span + event streams
  /// (implies event logging; the trace ring buffer itself stays off
  /// unless `tracing` is also set — the profiler consumes spans live).
  bool profile = false;
  /// Attach the online health monitor: a streaming time-series store fed
  /// by the sampler plus SLO/anomaly detectors over it (implies event
  /// logging, and defaults `sample_period` to 250 ms if unset — the
  /// monitor is driven by sampler ticks).
  bool health = false;
  /// Objectives and detector thresholds for the health monitor.
  HealthConfig health_config;
};

/// Bundles the three observability pieces for one system.
class Observability {
 public:
  Observability(runtime::Runtime* rt, const ObsConfig& config);

  MetricsRegistry* registry() { return &registry_; }
  Tracer* tracer() { return &tracer_; }
  Sampler* sampler() { return &sampler_; }
  const Sampler* sampler() const { return &sampler_; }
  EventLog* event_log() { return &event_log_; }
  const EventLog* event_log() const { return &event_log_; }

  /// The online auditor; null unless the config asked for auditing and
  /// ConfigureAuditor ran.
  Auditor* auditor() { return auditor_.get(); }
  const Auditor* auditor() const { return auditor_.get(); }
  bool audit_enabled() const { return config_.audit; }

  /// The critical-path profiler; null unless the config asked for it.
  Profiler* profiler() { return profiler_.get(); }
  const Profiler* profiler() const { return profiler_.get(); }

  /// The online health monitor; null unless the config asked for health
  /// and ConfigureHealth ran.
  HealthMonitor* health_monitor() { return health_monitor_.get(); }
  const HealthMonitor* health_monitor() const {
    return health_monitor_.get();
  }
  /// The streaming windowed series store behind the monitor; null unless
  /// ConfigureHealth ran.
  const TimeSeriesStore* timeseries() const { return timeseries_.get(); }
  bool health_enabled() const { return config_.health; }

  /// Creates the auditor and subscribes it to the event log (no-op when
  /// the config did not ask for auditing).  Called by the system at
  /// wiring time, once it knows what the consistency configuration
  /// promises: Definition 1 (strong) and/or Definition 2 (session —
  /// everything but bounded staleness, which bounds lag without
  /// consulting session versions).
  void ConfigureAuditor(bool expect_strong, bool expect_session);

  /// Creates the time-series store and health monitor and subscribes them
  /// to the sampler and the event log (no-op when the config did not ask
  /// for health).  Called by the system at wiring time, once it knows the
  /// replica count.
  void ConfigureHealth(int replica_count);

  /// Starts the periodic sampler if the config asked for one.
  void StartSampling();

  /// Stops the sampler daemon so the event queue can drain (mirrors
  /// ReplicatedSystem::StopGc).
  void StopSampling() { sampler_.Stop(); }

  /// The registry snapshot plus the sampled time series as one JSON
  /// object: {"registry":{...},"sampler":{...}}.
  std::string MetricsJson() const;

  /// Writes MetricsJson() to `path`.
  Status WriteMetricsJson(const std::string& path) const;

  /// Writes the trace in Chrome trace-event JSON to `path`, warning when
  /// the ring buffer overflowed and the file is silently incomplete.
  Status WriteTraceJson(const std::string& path) const;

  /// Writes the registry snapshot in Prometheus text format to `path`.
  Status WriteMetricsProm(const std::string& path) const;

  /// Writes the profiler report to `path` (error if profiling is off).
  Status WriteProfileJson(const std::string& path) const;

  /// The health monitor's full report (error text via Status if health
  /// monitoring is off).
  Status WriteHealthJson(const std::string& path) const;

  /// Everything a timeline dashboard needs as one JSON object:
  /// {"sampler":{...},"health":{...}|null,"faults":[{kind,at,component}]}
  /// — faults are the crash/recover/failover events retained in the log.
  std::string TimelineJson() const;

  /// Writes TimelineJson() to `path`.
  Status WriteTimelineJson(const std::string& path) const;

  /// The end-of-run audit report as one JSON object:
  /// {"auditor":{...}|null,"staleness":{histogram name:{count,...}}}
  /// — the staleness block pulls every "staleness."-prefixed histogram
  /// out of the registry snapshot.
  std::string AuditJson() const;

  /// Writes AuditJson() to `path`.
  Status WriteAuditJson(const std::string& path) const;

  /// Writes the retained event log as JSONL to `path`.
  Status WriteEventsJsonl(const std::string& path) const {
    return event_log_.WriteJsonl(path);
  }

 private:
  ObsConfig config_;
  MetricsRegistry registry_;
  Tracer tracer_;
  Sampler sampler_;
  EventLog event_log_;
  std::unique_ptr<Auditor> auditor_;
  std::unique_ptr<Profiler> profiler_;
  std::unique_ptr<TimeSeriesStore> timeseries_;
  std::unique_ptr<HealthMonitor> health_monitor_;
};

}  // namespace screp::obs

#endif  // SCREP_OBS_OBSERVABILITY_H_
