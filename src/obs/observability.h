// The observability facade owned by ReplicatedSystem: one MetricsRegistry,
// one span Tracer and one gauge Sampler per system, handed to every
// middleware component at wiring time.
//
// Everything is off by default (ObsConfig{}) and the instrumentation in
// the components is null-/enabled-guarded, so the default configuration
// adds nothing to a run and never perturbs virtual-time results.

#ifndef SCREP_OBS_OBSERVABILITY_H_
#define SCREP_OBS_OBSERVABILITY_H_

#include <string>

#include "common/sim_time.h"
#include "common/status.h"
#include "obs/metrics_registry.h"
#include "obs/sampler.h"
#include "obs/trace.h"
#include "sim/simulator.h"

namespace screp::obs {

/// What to collect during a run.
struct ObsConfig {
  /// Record per-transaction spans into the trace ring buffer.
  bool tracing = false;
  /// Span ring-buffer capacity (oldest spans evicted beyond it).
  size_t trace_capacity = 1 << 16;
  /// Gauge sampling period (0 = sampler off).
  SimTime sample_period = 0;
};

/// Bundles the three observability pieces for one system.
class Observability {
 public:
  Observability(Simulator* sim, const ObsConfig& config);

  MetricsRegistry* registry() { return &registry_; }
  Tracer* tracer() { return &tracer_; }
  Sampler* sampler() { return &sampler_; }
  const Sampler* sampler() const { return &sampler_; }

  /// Starts the periodic sampler if the config asked for one.
  void StartSampling();

  /// Stops the sampler daemon so the event queue can drain (mirrors
  /// ReplicatedSystem::StopGc).
  void StopSampling() { sampler_.Stop(); }

  /// The registry snapshot plus the sampled time series as one JSON
  /// object: {"registry":{...},"sampler":{...}}.
  std::string MetricsJson() const;

  /// Writes MetricsJson() to `path`.
  Status WriteMetricsJson(const std::string& path) const;

  /// Writes the trace in Chrome trace-event JSON to `path`.
  Status WriteTraceJson(const std::string& path) const {
    return tracer_.WriteChromeJson(path);
  }

 private:
  ObsConfig config_;
  MetricsRegistry registry_;
  Tracer tracer_;
  Sampler sampler_;
};

}  // namespace screp::obs

#endif  // SCREP_OBS_OBSERVABILITY_H_
