#include "obs/health.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/logging.h"
#include "obs/json.h"

namespace screp::obs {
namespace {

std::string Fmt(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

std::string ReplicaGauge(int replica, const char* suffix) {
  return "replica" + std::to_string(replica) + "." + suffix;
}

}  // namespace

const char* HealthStateName(HealthState state) {
  switch (state) {
    case HealthState::kHealthy:
      return "healthy";
    case HealthState::kDegraded:
      return "degraded";
    case HealthState::kCritical:
      return "critical";
  }
  return "?";
}

const char* HealthDetectorName(HealthDetector detector) {
  switch (detector) {
    case HealthDetector::kSloFastBurn:
      return "slo_fast_burn";
    case HealthDetector::kSloSlowBurn:
      return "slo_slow_burn";
    case HealthDetector::kAvailability:
      return "availability";
    case HealthDetector::kLagDivergence:
      return "lag_divergence";
    case HealthDetector::kQueueGrowth:
      return "queue_growth";
    case HealthDetector::kCreditStarvation:
      return "credit_starvation";
    case HealthDetector::kCertifierSaturation:
      return "certifier_saturation";
    case HealthDetector::kCatchupStall:
      return "catchup_stall";
    case HealthDetector::kRefreshLoss:
      return "refresh_loss";
  }
  return "?";
}

HealthState HealthDetectorSeverity(HealthDetector detector) {
  switch (detector) {
    // User-visible SLO impact: the error budget is burning fast, or
    // availability is already below objective.
    case HealthDetector::kSloFastBurn:
    case HealthDetector::kAvailability:
      return HealthState::kCritical;
    // Headroom / redundancy loss: users are mostly fine, an operator
    // should look.
    case HealthDetector::kSloSlowBurn:
    case HealthDetector::kLagDivergence:
    case HealthDetector::kQueueGrowth:
    case HealthDetector::kCreditStarvation:
    case HealthDetector::kCertifierSaturation:
    case HealthDetector::kCatchupStall:
    case HealthDetector::kRefreshLoss:
      return HealthState::kDegraded;
  }
  return HealthState::kDegraded;
}

HealthMonitor::HealthMonitor(const HealthConfig& config, int replica_count,
                             const TimeSeriesStore* store,
                             MetricsRegistry* registry, EventLog* event_log)
    : config_(config),
      replica_count_(replica_count),
      store_(store),
      event_log_(event_log),
      lag_streak_(static_cast<size_t>(replica_count), 0),
      credit_streak_(static_cast<size_t>(replica_count), 0),
      recovered_at_(static_cast<size_t>(replica_count), TimePoint{-1}),
      catchup_samples_(static_cast<size_t>(replica_count), 0),
      catchup_baseline_(static_cast<size_t>(replica_count), 0.0) {
  SCREP_CHECK_MSG(replica_count > 0, "health monitor needs replicas");
  SCREP_CHECK_MSG(store != nullptr, "health monitor needs a series store");
  first_fired_at_.fill(TimePoint{-1});
  state_gauge_ = registry->GetGauge("health.state");
  for (int d = 0; d < kHealthDetectorCount; ++d) {
    detector_gauges_[static_cast<size_t>(d)] = registry->GetGauge(
        std::string("health.") +
        HealthDetectorName(static_cast<HealthDetector>(d)));
  }
}

void HealthMonitor::OnEvent(const Event& event) {
  switch (event.kind) {
    case EventKind::kTxnFinished: {
      ++current_.attempts;
      const double ms = ToMillis(event.at - event.submit_time);
      if (ms > config_.p99_objective_ms) ++current_.slow;
      if (!event.committed) ++current_.bad;  // certification abort
      break;
    }
    case EventKind::kShed:
      ++current_.attempts;
      ++current_.bad;
      break;
    case EventKind::kTimeout:
      // The abandoned attempt never reaches kTxnFinished; count it here.
      ++current_.attempts;
      ++current_.slow;
      ++current_.bad;
      break;
    case EventKind::kRecover:
      if (event.detail == "replica" && event.replica >= 0 &&
          event.replica < replica_count_) {
        recovered_at_[static_cast<size_t>(event.replica)] = event.at;
        catchup_samples_[static_cast<size_t>(event.replica)] = 0;
        catchup_baseline_[static_cast<size_t>(event.replica)] = 0;
      }
      break;
    case EventKind::kHealth:
      // Our own transitions echo back through the log; never re-enter.
      break;
    default:
      break;
  }
}

HealthMonitor::SloBucket HealthMonitor::WindowTotals(int window) const {
  SloBucket total;
  const size_t n = buckets_.size();
  const size_t take = std::min(n, static_cast<size_t>(std::max(window, 0)));
  for (size_t i = n - take; i < n; ++i) {
    total.attempts += buckets_[i].attempts;
    total.slow += buckets_[i].slow;
    total.bad += buckets_[i].bad;
  }
  return total;
}

void HealthMonitor::EvaluateSlo() {
  const SloBucket fast = WindowTotals(config_.fast_window);
  const SloBucket slow = WindowTotals(config_.slow_window);

  // Burn = (fraction of attempts violating the latency objective) over
  // the tolerated fraction.  Shed and timed-out attempts violate it by
  // definition — the client never got a timely answer.
  const auto burn = [this](const SloBucket& b) {
    if (b.attempts < config_.min_attempts) return 0.0;
    return static_cast<double>(b.slow) / static_cast<double>(b.attempts) /
           config_.latency_budget;
  };
  const double fast_burn = burn(fast);
  const double slow_burn = burn(slow);
  // The fast window pages only while the slow window also exceeds the page
  // threshold (the standard multi-window guard: a single terrible sample
  // burns the fast window but dilutes away in the slow one).
  SetFiring(HealthDetector::kSloFastBurn,
            fast_burn >= config_.fast_burn_threshold &&
                slow_burn >= config_.fast_burn_threshold,
            now_,
            "fast_burn=" + Fmt(fast_burn) + " slow_burn=" + Fmt(slow_burn) +
                " attempts=" + std::to_string(fast.attempts));
  SetFiring(HealthDetector::kSloSlowBurn,
            slow_burn >= config_.slow_burn_threshold, now_,
            "slow_burn=" + Fmt(slow_burn) +
                " attempts=" + std::to_string(slow.attempts));

  double availability = 1.0;
  if (slow.attempts >= config_.min_attempts) {
    availability = 1.0 - static_cast<double>(slow.bad) /
                             static_cast<double>(slow.attempts);
  }
  SetFiring(HealthDetector::kAvailability,
            availability < config_.availability_objective, now_,
            "availability=" + Fmt(availability) + " objective=" +
                Fmt(config_.availability_objective) +
                " attempts=" + std::to_string(slow.attempts));
}

void HealthMonitor::EvaluateLagDivergence() {
  std::vector<double> lags(static_cast<size_t>(replica_count_), 0.0);
  bool any = false;
  for (int r = 0; r < replica_count_; ++r) {
    if (const RollingWindow* w =
            store_->gauge(ReplicaGauge(r, "version_lag"))) {
      lags[static_cast<size_t>(r)] = w->latest();
      any = true;
    }
  }
  if (!any) {
    SetFiring(HealthDetector::kLagDivergence, false, now_, "");
    return;
  }
  std::vector<double> sorted = lags;
  std::sort(sorted.begin(), sorted.end());
  const double median = sorted[sorted.size() / 2];

  bool fired = false;
  std::string detail;
  for (int r = 0; r < replica_count_; ++r) {
    const double lag = lags[static_cast<size_t>(r)];
    const bool diverged =
        lag - median > config_.lag_divergence_min &&
        lag > config_.lag_divergence_factor * std::max(median, 1.0);
    int& streak = lag_streak_[static_cast<size_t>(r)];
    streak = diverged ? streak + 1 : 0;
    if (streak >= config_.lag_divergence_samples) {
      fired = true;
      detail = "replica=" + std::to_string(r) + " lag=" + Fmt(lag) +
               " median=" + Fmt(median);
    }
  }
  SetFiring(HealthDetector::kLagDivergence, fired, now_, detail);
}

void HealthMonitor::EvaluateQueueGrowth() {
  const RollingWindow* queue = store_->gauge("lb.admission_queue");
  bool growing = false;
  std::string detail;
  if (queue != nullptr && !queue->empty()) {
    const double depth = queue->latest();
    const double slope = queue->TailSlopePerSec(
        static_cast<size_t>(std::max(config_.queue_growth_window, 2)));
    growing = depth >= config_.queue_growth_min_depth &&
              slope >= config_.queue_growth_slope;
    detail = "depth=" + Fmt(depth) + " slope=" + Fmt(slope) + "/s";
  }
  queue_streak_ = growing ? queue_streak_ + 1 : 0;
  SetFiring(HealthDetector::kQueueGrowth,
            queue_streak_ >= config_.queue_growth_samples, now_, detail);
}

void HealthMonitor::EvaluateCreditStarvation() {
  const RollingWindow* deferred = store_->gauge("certifier.deferred_refresh");
  bool fired = false;
  std::string detail;
  const bool backlog = deferred != nullptr && deferred->latest() > 0;
  for (int r = 0; r < replica_count_; ++r) {
    const RollingWindow* credits =
        store_->gauge(ReplicaGauge(r, "refresh_credits"));
    const bool starved =
        backlog && credits != nullptr && !credits->empty() &&
        credits->latest() <= 0;
    int& streak = credit_streak_[static_cast<size_t>(r)];
    streak = starved ? streak + 1 : 0;
    if (streak >= config_.credit_starvation_samples) {
      fired = true;
      detail = "replica=" + std::to_string(r) +
               " credits=0 deferred=" + Fmt(deferred->latest());
    }
  }
  SetFiring(HealthDetector::kCreditStarvation, fired, now_, detail);
}

void HealthMonitor::EvaluateCertifierSaturation() {
  const RollingWindow* queue = store_->gauge("certifier.queue_depth");
  const bool saturated = queue != nullptr && !queue->empty() &&
                         queue->latest() >= config_.certifier_queue_critical;
  certifier_streak_ = saturated ? certifier_streak_ + 1 : 0;
  SetFiring(HealthDetector::kCertifierSaturation,
            certifier_streak_ >= config_.certifier_saturation_samples, now_,
            queue != nullptr ? "queue=" + Fmt(queue->latest()) : "");
}

void HealthMonitor::EvaluateCatchupStall() {
  bool fired = false;
  std::string detail;
  for (int r = 0; r < replica_count_; ++r) {
    const size_t idx = static_cast<size_t>(r);
    if (recovered_at_[idx] < 0) continue;
    const RollingWindow* lag_w = store_->gauge(ReplicaGauge(r, "version_lag"));
    if (lag_w == nullptr || lag_w->empty() ||
        lag_w->latest_time() <= recovered_at_[idx]) {
      continue;  // no post-recovery sample yet
    }
    const double lag = lag_w->latest();
    if (lag <= config_.catchup_done_lag) {
      recovered_at_[idx] = -1;  // converged; disarm
      continue;
    }
    ++catchup_samples_[idx];
    if (catchup_samples_[idx] <= config_.catchup_grace_samples) {
      // Within grace: keep the best lag seen as the stall baseline.
      catchup_baseline_[idx] =
          catchup_samples_[idx] == 1 ? lag
                                     : std::min(catchup_baseline_[idx], lag);
      continue;
    }
    if (lag < catchup_baseline_[idx]) {
      // Still making progress: the baseline ratchets down with it.
      catchup_baseline_[idx] = lag;
      catchup_samples_[idx] = config_.catchup_grace_samples + 1;
      continue;
    }
    if (catchup_samples_[idx] >=
        config_.catchup_grace_samples + config_.catchup_stall_samples) {
      fired = true;
      detail = "replica=" + std::to_string(r) + " lag=" + Fmt(lag) +
               " baseline=" + Fmt(catchup_baseline_[idx]);
    }
  }
  SetFiring(HealthDetector::kCatchupStall, fired, now_, detail);
}

void HealthMonitor::EvaluateRefreshLoss() {
  double drop_rate = 0;
  bool any = false;
  for (int r = 0; r < replica_count_; ++r) {
    const std::string name = "net.refresh.r" + std::to_string(r) + ".dropped";
    if (const RollingWindow* w = store_->rate(name)) {
      if (!w->empty()) {
        drop_rate += w->latest();
        any = true;
      }
    }
  }
  const bool lossy = any && drop_rate >= config_.refresh_loss_rate;
  loss_streak_ = lossy ? loss_streak_ + 1 : 0;
  SetFiring(HealthDetector::kRefreshLoss,
            loss_streak_ >= config_.refresh_loss_samples, now_,
            "drops=" + Fmt(drop_rate) + "/s");
}

void HealthMonitor::SetFiring(HealthDetector detector, bool firing, TimePoint at,
                              const std::string& detail) {
  const size_t idx = static_cast<size_t>(detector);
  if (firing && !firing_[idx]) {
    ++firings_[idx];
    if (first_fired_at_[idx] < 0) first_fired_at_[idx] = at;
  }
  firing_[idx] = firing;
  if (firing) last_detail_[idx] = detail;
  detector_gauges_[idx]->Set(firing ? 1 : 0);
}

void HealthMonitor::OnSample(TimePoint at) {
  now_ = at;
  buckets_.push_back(current_);
  current_ = SloBucket{};
  const size_t keep = static_cast<size_t>(
      std::max({config_.fast_window, config_.slow_window, 1}));
  while (buckets_.size() > keep) buckets_.pop_front();

  EvaluateSlo();
  EvaluateLagDivergence();
  EvaluateQueueGrowth();
  EvaluateCreditStarvation();
  EvaluateCertifierSaturation();
  EvaluateCatchupStall();
  EvaluateRefreshLoss();

  // Overall state: worst severity among firing detectors.
  HealthState next = HealthState::kHealthy;
  HealthDetector trigger = HealthDetector::kSloFastBurn;
  bool have_trigger = false;
  uint16_t mask = 0;
  for (int d = 0; d < kHealthDetectorCount; ++d) {
    if (!firing_[static_cast<size_t>(d)]) continue;
    mask |= static_cast<uint16_t>(1u << d);
    const HealthState severity =
        HealthDetectorSeverity(static_cast<HealthDetector>(d));
    if (!have_trigger || severity > next) {
      next = severity;
      trigger = static_cast<HealthDetector>(d);
      have_trigger = true;
    }
  }

  if (next != state_) {
    HealthTransition tr;
    tr.at = at;
    tr.from = state_;
    tr.to = next;
    if (have_trigger) {
      tr.trigger = HealthDetectorName(trigger);
      tr.detail = last_detail_[static_cast<size_t>(trigger)];
    }
    transitions_.push_back(tr);
    if (event_log_ != nullptr) {
      Event event;
      event.kind = EventKind::kHealth;
      event.at = at;
      std::string text = std::string(HealthStateName(tr.from)) + "->" +
                         HealthStateName(tr.to);
      if (!tr.trigger.empty()) {
        text += " [" + tr.trigger + "] " + tr.detail;
      }
      event.detail = text;
      event_log_->Append(std::move(event));
    }
    state_ = next;
    worst_state_ = std::max(worst_state_, next);
  }
  state_gauge_->Set(static_cast<double>(static_cast<int>(state_)));
  states_.push_back(static_cast<int8_t>(state_));
  firing_masks_.push_back(mask);
}

int64_t HealthMonitor::total_firings() const {
  int64_t total = 0;
  for (int64_t f : firings_) total += f;
  return total;
}

std::string HealthMonitor::FiredDetectorNames() const {
  std::string names;
  for (int d = 0; d < kHealthDetectorCount; ++d) {
    if (firings_[static_cast<size_t>(d)] == 0) continue;
    if (!names.empty()) names += ",";
    names += HealthDetectorName(static_cast<HealthDetector>(d));
  }
  return names;
}

std::string HealthMonitor::Summary() const {
  std::ostringstream out;
  out << "state=" << HealthStateName(state_)
      << " worst=" << HealthStateName(worst_state_)
      << " transitions=" << transitions_.size()
      << " firings=" << total_firings();
  const std::string fired = FiredDetectorNames();
  if (!fired.empty()) out << " detectors=" << fired;
  return out.str();
}

std::string HealthMonitor::ToJson() const {
  std::ostringstream out;
  out << "{\"state\":\"" << HealthStateName(state_) << "\",\"worst\":\""
      << HealthStateName(worst_state_) << "\",\"samples\":" << samples()
      << ",\"total_firings\":" << total_firings() << ",\"objectives\":{"
      << "\"p99_objective_ms\":" << Fmt(config_.p99_objective_ms)
      << ",\"latency_budget\":" << Fmt(config_.latency_budget)
      << ",\"availability_objective\":"
      << Fmt(config_.availability_objective) << "},\"detectors\":{";
  for (int d = 0; d < kHealthDetectorCount; ++d) {
    const size_t idx = static_cast<size_t>(d);
    if (d > 0) out << ",";
    out << "\"" << HealthDetectorName(static_cast<HealthDetector>(d))
        << "\":{\"firings\":" << firings_[idx] << ",\"firing\":"
        << (firing_[idx] ? "true" : "false") << ",\"first_fired_at\":"
        << first_fired_at_[idx];
    if (!last_detail_[idx].empty()) {
      out << ",\"detail\":\"" << JsonEscape(last_detail_[idx]) << "\"";
    }
    out << "}";
  }
  out << "},\"transitions\":[";
  for (size_t i = 0; i < transitions_.size(); ++i) {
    const HealthTransition& tr = transitions_[i];
    if (i > 0) out << ",";
    out << "{\"at\":" << tr.at << ",\"from\":\"" << HealthStateName(tr.from)
        << "\",\"to\":\"" << HealthStateName(tr.to) << "\",\"trigger\":\""
        << JsonEscape(tr.trigger) << "\",\"detail\":\""
        << JsonEscape(tr.detail) << "\"}";
  }
  out << "]}";
  return out.str();
}

std::string HealthMonitor::TimelineJson() const {
  std::ostringstream out;
  out << "{\"states\":[";
  for (size_t i = 0; i < states_.size(); ++i) {
    if (i > 0) out << ",";
    out << static_cast<int>(states_[i]);
  }
  out << "],\"detectors\":{";
  for (int d = 0; d < kHealthDetectorCount; ++d) {
    if (d > 0) out << ",";
    out << "\"" << HealthDetectorName(static_cast<HealthDetector>(d))
        << "\":[";
    for (size_t i = 0; i < firing_masks_.size(); ++i) {
      if (i > 0) out << ",";
      out << ((firing_masks_[i] >> d) & 1u);
    }
    out << "]";
  }
  out << "},\"transitions\":[";
  for (size_t i = 0; i < transitions_.size(); ++i) {
    const HealthTransition& tr = transitions_[i];
    if (i > 0) out << ",";
    out << "{\"at\":" << tr.at << ",\"from\":" << static_cast<int>(tr.from)
        << ",\"to\":" << static_cast<int>(tr.to) << ",\"trigger\":\""
        << JsonEscape(tr.trigger) << "\"}";
  }
  out << "]}";
  return out.str();
}

}  // namespace screp::obs
