// Online health monitor: judges the system's health *while it runs* from
// the streaming time-series layer (timeseries.h) and the event stream
// (eventlog.h), with no post-hoc analysis.
//
// Two kinds of judgment:
//
//  - Declarative SLOs, evaluated as multi-window burn rates in the SRE
//    style.  The latency SLO says "at most `latency_budget` of requests
//    may exceed `p99_objective_ms`"; the burn rate is the observed bad
//    fraction divided by the budget, so burn 1.0 consumes the budget
//    exactly, and a fast-window burn of 14 means the budget is burning
//    14x too fast — page now.  The availability SLO treats shed, aborted
//    and timed-out attempts as downtime: availability = 1 − shed−abort
//    rate over the slow window.
//
//  - Anomaly detectors tuned to this middleware's failure modes, each a
//    thresholded predicate over rolling windows with a consecutive-sample
//    debounce: per-replica version-lag divergence vs. the cluster median
//    (a crashed or partitioned replica stops applying refreshes and falls
//    behind the survivors), admission-queue growth trend (overload before
//    shedding starts), refresh-credit starvation (flow control pinned at
//    zero with fan-out deferred), certifier intake saturation (the global
//    certification bottleneck backing up), post-crash catch-up stall (a
//    recovered replica failing to converge), and refresh-link loss (drops
//    and retransmissions on the refresh stream).
//
// Health is the worst severity among the firing signals: healthy →
// degraded (redundancy or headroom lost, users mostly fine) → critical
// (user-visible SLO impact).  Every state transition is appended to the
// event log as a kHealth event naming the triggering detector and the
// observed values, and the current state plus per-detector firing flags
// are exported as `health.*` gauges, so the health signal itself becomes
// a sampled series on the timeline.

#ifndef SCREP_OBS_HEALTH_H_
#define SCREP_OBS_HEALTH_H_

#include <array>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/sim_time.h"
#include "obs/eventlog.h"
#include "obs/metrics_registry.h"
#include "obs/timeseries.h"

namespace screp::obs {

enum class HealthState { kHealthy = 0, kDegraded = 1, kCritical = 2 };

const char* HealthStateName(HealthState state);

/// The detector catalog.  Order is stable: it indexes the firing bitmask
/// in the exported timeline.
enum class HealthDetector {
  kSloFastBurn = 0,      ///< latency budget burning >= fast threshold
  kSloSlowBurn,          ///< latency budget burning >= slow threshold
  kAvailability,         ///< 1 - shed-abort rate below objective
  kLagDivergence,        ///< replica version lag vs. cluster median
  kQueueGrowth,          ///< admission queue growing, trend + depth
  kCreditStarvation,     ///< refresh credits pinned at 0, fan-out deferred
  kCertifierSaturation,  ///< certifier intake queue at/above bound
  kCatchupStall,         ///< recovered replica failing to converge
  kRefreshLoss,          ///< refresh-link drop/retransmission rate
};
inline constexpr int kHealthDetectorCount = 9;

const char* HealthDetectorName(HealthDetector detector);

/// Severity a detector reports while firing.
HealthState HealthDetectorSeverity(HealthDetector detector);

/// Declarative objectives and detector thresholds.  The defaults are
/// deliberately conservative: clean default-config runs of every bench
/// driver must stay detector-quiet (enforced by bench/fault_timeline
/// --health-sweep), while each injected fault class still trips its
/// detector within a handful of samples.
struct HealthConfig {
  // ---- Latency SLO (burn-rate windows) ----
  /// Response-time objective: at most `latency_budget` of attempts may
  /// take longer than this.  Sub-second, in the spirit of TPC-W's
  /// web-interaction response-time thresholds: the slowest clean figure
  /// workload (eager ordering) must fit with real headroom.
  double p99_objective_ms = 500.0;
  /// Tolerated fraction of attempts above the objective (the error
  /// budget the burn rate is measured against).
  double latency_budget = 0.01;
  /// Burn-rate windows, in samples, and their firing thresholds.
  int fast_window = 4;
  int slow_window = 24;
  double fast_burn_threshold = 14.0;
  double slow_burn_threshold = 3.0;
  /// Windows with fewer attempts than this are not judged (a near-idle
  /// window would otherwise turn one slow request into a page).
  int64_t min_attempts = 20;

  // ---- Availability SLO ----
  /// Objective on 1 - (shed + aborted + timed-out) / attempts over the
  /// slow window.  Certification aborts count: they consume client
  /// retries just like sheds do.
  double availability_objective = 0.80;

  // ---- Anomaly detectors ----
  /// Replica lag divergence: lag must exceed the cluster median by both
  /// this many versions and `lag_divergence_factor` x the median, for
  /// `lag_divergence_samples` consecutive samples.
  double lag_divergence_min = 200.0;
  double lag_divergence_factor = 8.0;
  int lag_divergence_samples = 3;
  /// Admission-queue growth: queue at least this deep and growing at
  /// least this fast — trend over the last `queue_growth_window` samples,
  /// so flat history before a burst does not dilute the ramp — for this
  /// many consecutive samples.
  double queue_growth_min_depth = 16.0;
  double queue_growth_slope = 20.0;  ///< queued requests per second
  int queue_growth_window = 8;
  int queue_growth_samples = 3;
  /// Refresh-credit starvation: a replica's credits at zero while the
  /// certifier holds deferred fan-out, for this many samples.
  int credit_starvation_samples = 4;
  /// Certifier intake saturation: certification CPU queue at or above
  /// this depth for this many samples.
  double certifier_queue_critical = 64.0;
  int certifier_saturation_samples = 3;
  /// Post-crash catch-up: a recovered replica is converged once its lag
  /// drops below `catchup_done_lag`.  After `catchup_grace_samples` of
  /// grace, a further `catchup_stall_samples` samples without the lag
  /// improving on its post-grace baseline fires the stall detector.
  double catchup_done_lag = 100.0;
  int catchup_grace_samples = 4;
  int catchup_stall_samples = 4;
  /// Refresh-link loss: administratively or stochastically dropped
  /// refresh messages per second, summed over replicas.
  double refresh_loss_rate = 25.0;
  int refresh_loss_samples = 2;
};

/// One health-state change.
struct HealthTransition {
  TimePoint at = 0;
  HealthState from = HealthState::kHealthy;
  HealthState to = HealthState::kHealthy;
  /// Name of the detector that triggered the change (the most severe
  /// firing one on upgrades; empty on recovery to healthy).
  std::string trigger;
  /// Human-readable observed values behind the trigger.
  std::string detail;
};

/// The online monitor.  Subscribe OnEvent to the event log and OnSample
/// to the sampler (after the time-series store ingested the tick).
class HealthMonitor {
 public:
  HealthMonitor(const HealthConfig& config, int replica_count,
                const TimeSeriesStore* store, MetricsRegistry* registry,
                EventLog* event_log);

  /// Event-log sink: accumulates SLO inputs (finished / shed / timed-out
  /// attempts) and arms the catch-up detector on recovery events.
  void OnEvent(const Event& event);

  /// Sampler sink: evaluates every SLO and detector against the current
  /// windows, updates state, and emits transitions.  Call after the
  /// TimeSeriesStore ingested the same tick.
  void OnSample(TimePoint at);

  HealthState state() const { return state_; }
  HealthState worst_state() const { return worst_state_; }

  /// True while `detector` is firing.
  bool firing(HealthDetector detector) const {
    return firing_[static_cast<size_t>(detector)];
  }
  /// Rising edges of `detector` (distinct incidents, not samples).
  int64_t firings(HealthDetector detector) const {
    return firings_[static_cast<size_t>(detector)];
  }
  /// Rising edges across all detectors; 0 = the run was detector-quiet.
  int64_t total_firings() const;
  /// Virtual time `detector` first fired, or -1 if it never did.
  TimePoint first_fired_at(HealthDetector detector) const {
    return first_fired_at_[static_cast<size_t>(detector)];
  }

  int64_t samples() const { return static_cast<int64_t>(states_.size()); }
  const std::vector<HealthTransition>& transitions() const {
    return transitions_;
  }

  /// Names of the detectors that fired at least once, comma-joined.
  std::string FiredDetectorNames() const;

  /// One-line human verdict.
  std::string Summary() const;

  /// Full report: objectives, per-detector statistics, transitions.
  std::string ToJson() const;

  /// Per-sample health track for the timeline dashboard:
  /// {"states":[0,1,...],"detectors":{name:[0,1,...]},"transitions":[...]}
  /// — aligned with the sampler's timestamps from the first sample after
  /// the monitor was attached.
  std::string TimelineJson() const;

 private:
  /// Attempt counts accumulated between two samples.
  struct SloBucket {
    int64_t attempts = 0;  ///< finished + shed
    int64_t slow = 0;      ///< finished later than the objective
    int64_t bad = 0;       ///< shed + aborted + timed out
  };
  /// Sum of the most recent `window` buckets.
  SloBucket WindowTotals(int window) const;

  void EvaluateSlo();
  void EvaluateLagDivergence();
  void EvaluateQueueGrowth();
  void EvaluateCreditStarvation();
  void EvaluateCertifierSaturation();
  void EvaluateCatchupStall();
  void EvaluateRefreshLoss();

  /// Latches the detector's firing flag for this sample, counting rising
  /// edges and remembering the first trigger description.
  void SetFiring(HealthDetector detector, bool firing, TimePoint at,
                 const std::string& detail);

  HealthConfig config_;
  int replica_count_;
  const TimeSeriesStore* store_;
  EventLog* event_log_;
  Gauge* state_gauge_;
  std::array<Gauge*, kHealthDetectorCount> detector_gauges_{};

  // SLO accumulation.
  SloBucket current_;
  std::deque<SloBucket> buckets_;

  // Per-detector state.
  std::array<bool, kHealthDetectorCount> firing_{};
  std::array<int64_t, kHealthDetectorCount> firings_{};
  std::array<TimePoint, kHealthDetectorCount> first_fired_at_;
  std::array<std::string, kHealthDetectorCount> last_detail_;
  /// Consecutive-sample debounce counters.
  std::vector<int> lag_streak_;     // per replica
  std::vector<int> credit_streak_;  // per replica
  int queue_streak_ = 0;
  int certifier_streak_ = 0;
  int loss_streak_ = 0;
  /// Catch-up tracking, per replica: -1 = disarmed.
  std::vector<TimePoint> recovered_at_;
  std::vector<int> catchup_samples_;
  std::vector<double> catchup_baseline_;

  // State machine + timeline.
  TimePoint now_ = 0;
  HealthState state_ = HealthState::kHealthy;
  HealthState worst_state_ = HealthState::kHealthy;
  std::vector<HealthTransition> transitions_;
  std::vector<int8_t> states_;          // one per sample
  std::vector<uint16_t> firing_masks_;  // one per sample, bit = detector
};

}  // namespace screp::obs

#endif  // SCREP_OBS_HEALTH_H_
