// Minimal JSON utilities for the observability layer.
//
// The exporters in this directory hand-write JSON (the formats are small
// and fixed); JsonEscape covers the one hard part.  JsonValue is a tiny
// recursive-descent parser used to round-trip those exports in tests and
// by any tool that wants to read a run's metrics back.

#ifndef SCREP_OBS_JSON_H_
#define SCREP_OBS_JSON_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace screp::obs {

/// Escapes `s` for embedding inside a JSON string literal (quotes not
/// included).
std::string JsonEscape(const std::string& s);

/// A parsed JSON document node.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parses a complete JSON document (trailing garbage is an error).
  static Result<JsonValue> Parse(const std::string& text);

  Kind kind() const { return kind_; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }

  double number() const { return number_; }
  bool boolean() const { return boolean_; }
  const std::string& str() const { return string_; }
  const std::vector<JsonValue>& array() const { return array_; }
  const std::map<std::string, JsonValue>& object() const { return object_; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

 private:
  friend class JsonParser;

  Kind kind_ = Kind::kNull;
  bool boolean_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

}  // namespace screp::obs

#endif  // SCREP_OBS_JSON_H_
