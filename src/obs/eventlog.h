// Structured event log: a bounded, append-only record of every middleware
// decision, stamped with virtual time.
//
// Where the tracer answers "where did the time go" and the registry
// answers "how much of everything happened", the event log answers "what
// exactly did the middleware decide, in what order":
//
//   kRoute          load balancer routed a transaction (replica chosen,
//                   required-version tag, the tracker's V_system)
//   kBeginAdmitted  proxy admitted BEGIN (requested vs. satisfied version,
//                   wait cause and duration)
//   kCertVerdict    certifier decision (commit version, or the conflicting
//                   committed version/txn on abort)
//   kApply          a writeset committed at one replica (version advance)
//   kSessionUpdate  the load balancer advanced a session's version
//   kTxnFinished    client acknowledgment, with everything a
//                   consistency-checker TxnRecord needs
//   kCrash/kRecover/kFailover
//                   component failure events
//   kShed           overload protection refused a request (admission
//                   queue full, or the certifier's intake bound)
//   kTimeout        a client abandoned an unacknowledged request and
//                   will retry it with backoff
//   kHealth         the online health monitor changed state (detail names
//                   the old/new state and the triggering detector)
//
// The log is consumed three ways: live sinks (the online Auditor), JSONL
// export for offline tooling, and replay into consistency/history.h types
// so the offline checkers can audit exactly what the online auditor saw.
//
// Like the tracer, a disabled log (the default) rejects Append() after one
// branch and the instrumentation never perturbs virtual-time results.

#ifndef SCREP_OBS_EVENTLOG_H_
#define SCREP_OBS_EVENTLOG_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/sim_time.h"
#include "common/status.h"
#include "common/types.h"
#include "consistency/history.h"

namespace screp::obs {

/// What a middleware decision was about.
enum class EventKind {
  kRoute = 0,
  kBeginAdmitted,
  kCertVerdict,
  kApply,
  kSessionUpdate,
  kTxnFinished,
  kCrash,
  kRecover,
  kFailover,
  kShed,
  kTimeout,
  kHealth,
};

const char* EventKindName(EventKind kind);

/// Why a BEGIN (or an eager commit acknowledgment) had to wait — the
/// consistency configuration determines which tracker the version tag
/// came from, and therefore where any blocked time is attributed.
enum class WaitCause {
  kNone = 0,       ///< no start synchronization (eager BEGINs)
  kSystemVersion,  ///< LSC: V_local must reach V_system
  kTableVersion,   ///< LFC: V_local must reach max V_t over the table-set
  kSessionVersion, ///< SC: V_local must reach the session's version
  kStalenessBound, ///< BSC: V_local must be within the bound of V_system
  kEagerGlobal,    ///< ESC: ack waits for the global commit
};

const char* WaitCauseName(WaitCause cause);

/// One middleware decision.  Field meaning depends on `kind`; unused
/// fields keep their zero defaults (and are omitted from the JSONL).
struct Event {
  EventKind kind = EventKind::kRoute;
  /// Virtual time of the decision.
  TimePoint at = 0;
  TxnId txn = 0;
  SessionId session = 0;
  ReplicaId replica = kNoReplica;

  /// kRoute/kBeginAdmitted: the version tag the transaction carries.
  DbVersion required_version = 0;
  /// kRoute: the LB tracker's V_system when the tag was computed.
  /// kSessionUpdate: the session's version after the update.
  /// kBeginAdmitted: V_local when BEGIN actually executed (the snapshot).
  DbVersion satisfied_version = 0;
  /// kCertVerdict/kApply/kTxnFinished: certified commit version.
  DbVersion commit_version = kNoVersion;
  /// kCertVerdict/kTxnFinished: the snapshot the writeset was built at.
  DbVersion snapshot = 0;
  /// kCertVerdict abort: the committed version it conflicted with.
  DbVersion conflict_version = kNoVersion;
  /// kCertVerdict abort: the transaction that committed conflict_version.
  TxnId conflict_txn = 0;

  /// kBeginAdmitted: which tracker the version tag came from.
  WaitCause wait_cause = WaitCause::kNone;
  /// kBeginAdmitted: how long BEGIN was blocked (0 = admitted on arrival).
  Duration wait = 0;

  /// kCertVerdict/kTxnFinished: decision / outcome.
  bool committed = false;
  bool read_only = true;
  /// kApply: a local client commit (vs. a refresh writeset).
  bool local = false;

  /// kTxnFinished: client-side timeline (TxnRecord fields).
  TimePoint submit_time = 0;
  TimePoint start_time = 0;

  /// kCertVerdict abort / kCrash / kFailover: short reason tag
  /// ("ww" / "rw" / "window", "replica" / "certifier" / "lb").
  /// kShed: where the request was refused ("lb" / "certifier").
  std::string detail;

  /// kTxnFinished: declared table-set / written tables / written keys.
  std::vector<TableId> table_set;
  std::vector<TableId> tables_written;
  std::vector<std::pair<TableId, int64_t>> keys_written;

  /// Partitioned certification (K > 1 lanes only; all empty at K = 1, so
  /// single-stream JSONL output is byte-identical).  Versions are
  /// (shard, value) pairs in each shard's own version space.
  /// kCertVerdict commit / kApply / kTxnFinished: per touched shard, the
  /// shard-local commit version.
  std::vector<std::pair<int32_t, DbVersion>> shard_versions;
  /// kCertVerdict / kBeginAdmitted / kTxnFinished: per shard, the
  /// snapshot version the transaction read in that shard.
  std::vector<std::pair<int32_t, DbVersion>> shard_snapshots;
  /// kRoute / kBeginAdmitted: per touched shard, the version the replica
  /// must publish before BEGIN.
  std::vector<std::pair<int32_t, DbVersion>> shard_required;

  /// The event as one JSONL line (no trailing newline).
  std::string ToJson() const;
};

/// Bounded, append-only event collector with live sinks.
class EventLog {
 public:
  explicit EventLog(size_t capacity);

  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  /// Appends an event (no-op while disabled).  Live sinks see every event
  /// in append order, even ones later evicted from the bounded buffer.
  void Append(Event event);

  /// Registers a live consumer invoked synchronously on every Append.
  using Sink = std::function<void(const Event&)>;
  void AddSink(Sink sink) { sinks_.push_back(std::move(sink)); }

  /// Events currently retained, oldest first.
  std::vector<Event> Events() const;

  size_t size() const { return size_; }
  size_t capacity() const { return ring_.size(); }
  /// Events evicted because the ring was full (sinks still saw them).
  int64_t dropped() const { return dropped_; }
  /// Total events appended while enabled (retained + evicted).
  int64_t appended() const { return appended_; }

  /// The retained events as JSON Lines (one Event::ToJson() per line).
  std::string ToJsonl() const;

  /// Writes ToJsonl() to `path`.
  Status WriteJsonl(const std::string& path) const;

  /// Rebuilds a consistency-checker history from the retained
  /// kTxnFinished events, so the offline checkers in
  /// consistency/checker.h can audit what the event log saw.
  History ReplayHistory() const;

 private:
  bool enabled_ = false;
  std::vector<Event> ring_;
  size_t head_ = 0;  ///< index of the oldest event
  size_t size_ = 0;
  int64_t dropped_ = 0;
  int64_t appended_ = 0;
  std::vector<Sink> sinks_;
};

}  // namespace screp::obs

#endif  // SCREP_OBS_EVENTLOG_H_
