#include "obs/profiler.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

namespace screp::obs {

namespace {

/// Which span family credits which segment.  Two spans may share a
/// segment (request + response hop of the same link class); dedup is per
/// table *entry*, so both directions still count once each.
struct SpanMapping {
  const char* span_name;
  ProfileSegment segment;
};

constexpr SpanMapping kSpanTable[] = {
    {"net.client_lb", ProfileSegment::kNetClientLb},
    {"net.lb_client", ProfileSegment::kNetClientLb},
    {"lb.admission_wait", ProfileSegment::kAdmissionWait},
    {"net.dispatch", ProfileSegment::kNetLbReplica},
    {"net.response", ProfileSegment::kNetLbReplica},
    {"proxy.start_delay", ProfileSegment::kVersionWait},
    {"proxy.exec", ProfileSegment::kExec},
    {"net.certreq", ProfileSegment::kNetCertifier},
    {"net.decision", ProfileSegment::kNetCertifier},
    {"certifier.intake_wait", ProfileSegment::kCertIntakeWait},
    {"certifier.certify", ProfileSegment::kCertify},
    {"certifier.force_wait", ProfileSegment::kForceWait},
    {"proxy.gap_wait", ProfileSegment::kGapWait},
    {"proxy.lane_wait", ProfileSegment::kLaneWait},
    {"proxy.apply", ProfileSegment::kApply},
    {"proxy.publish_wait", ProfileSegment::kPublishWait},
    {"proxy.commit", ProfileSegment::kCommit},
    {"proxy.claim_wait", ProfileSegment::kClaimWait},
    {"eager.global_wait", ProfileSegment::kGlobalWait},
};

constexpr int kSpanTableSize =
    static_cast<int>(sizeof(kSpanTable) / sizeof(kSpanTable[0]));
static_assert(kSpanTableSize <= 32, "seen bitmask is 32 bits");

int SpanTableIndex(const char* name) {
  for (int i = 0; i < kSpanTableSize; ++i) {
    if (std::strcmp(kSpanTable[i].span_name, name) == 0) return i;
  }
  return -1;
}

double Ms(Duration t) { return static_cast<double>(t) / 1e3; }

/// Nearest-rank percentile of a sorted sample (empty -> 0).
Duration Percentile(const std::vector<Duration>& sorted, double p) {
  if (sorted.empty()) return 0;
  const auto rank = static_cast<size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

}  // namespace

const char* ProfileSegmentName(ProfileSegment segment) {
  switch (segment) {
    case ProfileSegment::kNetClientLb: return "net_client_lb";
    case ProfileSegment::kAdmissionWait: return "admission_wait";
    case ProfileSegment::kNetLbReplica: return "net_lb_replica";
    case ProfileSegment::kVersionWait: return "version_wait";
    case ProfileSegment::kExec: return "exec";
    case ProfileSegment::kNetCertifier: return "net_certifier";
    case ProfileSegment::kCertIntakeWait: return "cert_intake_wait";
    case ProfileSegment::kCertify: return "certify";
    case ProfileSegment::kForceWait: return "force_wait";
    case ProfileSegment::kGapWait: return "gap_wait";
    case ProfileSegment::kLaneWait: return "lane_wait";
    case ProfileSegment::kApply: return "apply";
    case ProfileSegment::kPublishWait: return "publish_wait";
    case ProfileSegment::kCommit: return "commit";
    case ProfileSegment::kClaimWait: return "claim_wait";
    case ProfileSegment::kGlobalWait: return "global_wait";
    case ProfileSegment::kRetry: return "retry";
    case ProfileSegment::kSegmentCount: break;
  }
  return "?";
}

SegmentKind ProfileSegmentKind(ProfileSegment segment) {
  switch (segment) {
    case ProfileSegment::kNetClientLb:
    case ProfileSegment::kNetLbReplica:
    case ProfileSegment::kNetCertifier:
      return SegmentKind::kNetwork;
    case ProfileSegment::kExec:
    case ProfileSegment::kCertify:
    case ProfileSegment::kApply:
    case ProfileSegment::kCommit:
      return SegmentKind::kService;
    default:
      return SegmentKind::kWait;
  }
}

const char* SegmentKindName(SegmentKind kind) {
  switch (kind) {
    case SegmentKind::kWait: return "wait";
    case SegmentKind::kService: return "service";
    case SegmentKind::kNetwork: return "network";
  }
  return "?";
}

void Profiler::OnSpan(const TraceSpan& span) {
  if (span.txn == 0) return;  // batch-level span (log force)
  const int index = SpanTableIndex(span.name);
  if (index < 0) return;  // overlapping/diagnostic span families
  if (closed_.count(span.txn) != 0) return;  // attempt already timed out
  OpenAttempt& open = open_[span.txn];
  const uint32_t bit = uint32_t{1} << index;
  if ((open.seen & bit) != 0) return;  // duplicate delivery: first wins
  open.seen |= bit;
  open.seg[static_cast<size_t>(kSpanTable[index].segment)] += span.duration;
}

void Profiler::OnEvent(const Event& event) {
  if (event.txn == 0) return;
  switch (event.kind) {
    case EventKind::kTxnFinished:
      if (closed_.erase(event.txn) > 0) {
        // The attempt was already closed by its timeout; this is the
        // answer the client dropped as stale.
        ++stale_finishes_;
        return;
      }
      Finalize(event.txn, event.at - event.submit_time, event.at,
               event.committed, /*timed_out=*/false);
      break;
    case EventKind::kTimeout:
      // The client measured exactly `wait` before giving up; whatever
      // the attempt was doing when the timer fired is charged to retry.
      Finalize(event.txn, event.wait, event.at, /*committed=*/false,
               /*timed_out=*/true);
      closed_.insert(event.txn);
      break;
    default:
      break;
  }
}

void Profiler::Finalize(TxnId txn, Duration total, Duration ack,
                        bool committed, bool timed_out) {
  Attempt attempt;
  auto it = open_.find(txn);
  if (it != open_.end()) {
    attempt.seg = it->second.seg;
    open_.erase(it);
  }
  attempt.total = total;
  attempt.committed = committed;
  attempt.timed_out = timed_out;
  attempt.measured = ack >= measure_from_;
  if (timed_out) ++timeouts_;

  Duration sum = 0;
  for (const Duration s : attempt.seg) sum += s;
  Duration residual = total - sum;
  if (committed) {
    // Committed attempts traversed fully instrumented stages: the
    // segments must tile the response interval.
    ++conservation_checked_;
    if (std::llabs(residual) > max_abs_residual_) {
      max_abs_residual_ = std::llabs(residual);
    }
    if (std::llabs(residual) > tolerance_) {
      ++conservation_violations_;
      if (first_violation_.empty()) {
        std::ostringstream out;
        out << "txn " << txn << ": response=" << total << "us, segments="
            << sum << "us, residual=" << residual << "us";
        first_violation_ = out.str();
      }
    }
  } else if (residual > 0) {
    attempt.seg[static_cast<size_t>(ProfileSegment::kRetry)] = residual;
  } else if (residual < -tolerance_) {
    // Segments exceeding the measured wait means double counting —
    // just as much a conservation bug as losing time.
    ++conservation_violations_;
    if (std::llabs(residual) > max_abs_residual_) {
      max_abs_residual_ = std::llabs(residual);
    }
    if (first_violation_.empty()) {
      std::ostringstream out;
      out << "txn " << txn << " (failed): response=" << total
          << "us, segments=" << sum << "us, residual=" << residual << "us";
      first_violation_ = out.str();
    }
  }

  if (attempt.measured) {
    ++measured_;
    if (committed) {
      ++committed_;
    } else {
      ++failed_;
    }
    for (int s = 0; s < kProfileSegmentCount; ++s) {
      measured_totals_[static_cast<size_t>(s)] +=
          attempt.seg[static_cast<size_t>(s)];
    }
    measured_response_total_ += total;
  }
  attempts_.push_back(attempt);
}

double Profiler::SegmentTotalMs(ProfileSegment segment) const {
  return Ms(measured_totals_[static_cast<size_t>(segment)]);
}

double Profiler::MeanSegmentMs(ProfileSegment segment) const {
  if (measured_ == 0) return 0;
  return SegmentTotalMs(segment) / static_cast<double>(measured_);
}

std::string Profiler::MeanBreakdown() const {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(3);
  bool first = true;
  for (int s = 0; s < kProfileSegmentCount; ++s) {
    const auto segment = static_cast<ProfileSegment>(s);
    if (measured_totals_[static_cast<size_t>(s)] == 0) continue;
    if (!first) out << " ";
    first = false;
    out << ProfileSegmentName(segment) << "=" << MeanSegmentMs(segment);
  }
  return out.str();
}

std::string Profiler::ToJson() const {
  std::ostringstream out;
  out << "{\"measure_from_us\":" << measure_from_
      << ",\"tolerance_us\":" << tolerance_ << ",\"counts\":{\"finished\":"
      << finished() << ",\"measured\":" << measured_
      << ",\"committed\":" << committed_ << ",\"failed\":" << failed_
      << ",\"timeouts\":" << timeouts_ << ",\"unfinished\":" << unfinished()
      << ",\"stale_finishes\":" << stale_finishes_ << "}"
      << ",\"conservation\":{\"checked\":" << conservation_checked_
      << ",\"violations\":" << conservation_violations_
      << ",\"max_abs_residual_us\":" << max_abs_residual_;
  if (!first_violation_.empty()) {
    // The detail string is built from integers only; no escaping needed.
    out << ",\"first_violation\":\"" << first_violation_ << "\"";
  }
  out << "}";

  // Per-segment stats over measured attempts.  mean_ms is the population
  // mean (zeros included) so the means tile the mean response time;
  // percentiles are over the attempts where the segment is nonzero.
  out << ",\"mean_response_ms\":"
      << (measured_ > 0
              ? Ms(measured_response_total_) / static_cast<double>(measured_)
              : 0.0);
  out << ",\"segments\":{";
  bool first = true;
  for (int s = 0; s < kProfileSegmentCount; ++s) {
    const auto segment = static_cast<ProfileSegment>(s);
    std::vector<Duration> nonzero;
    for (const Attempt& a : attempts_) {
      if (!a.measured) continue;
      const Duration v = a.seg[static_cast<size_t>(s)];
      if (v > 0) nonzero.push_back(v);
    }
    std::sort(nonzero.begin(), nonzero.end());
    const Duration total = measured_totals_[static_cast<size_t>(s)];
    const double share =
        measured_response_total_ > 0
            ? static_cast<double>(total) /
                  static_cast<double>(measured_response_total_)
            : 0.0;
    if (!first) out << ",";
    first = false;
    out << "\"" << ProfileSegmentName(segment) << "\":{\"kind\":\""
        << SegmentKindName(ProfileSegmentKind(segment))
        << "\",\"count\":" << nonzero.size() << ",\"total_ms\":" << Ms(total)
        << ",\"mean_ms\":" << MeanSegmentMs(segment)
        << ",\"p50_ms\":" << Ms(Percentile(nonzero, 0.5))
        << ",\"p95_ms\":" << Ms(Percentile(nonzero, 0.95))
        << ",\"p99_ms\":" << Ms(Percentile(nonzero, 0.99))
        << ",\"share\":" << share << "}";
  }
  out << "}";

  // Percentile-banded attribution: which segments dominate the middle of
  // the response distribution vs its tail.
  std::vector<Duration> totals;
  totals.reserve(static_cast<size_t>(measured_));
  for (const Attempt& a : attempts_) {
    if (a.measured) totals.push_back(a.total);
  }
  std::sort(totals.begin(), totals.end());
  const Duration p50 = Percentile(totals, 0.5);
  const Duration p95 = Percentile(totals, 0.95);
  const Duration p99 = Percentile(totals, 0.99);
  struct Band {
    const char* name;
    int64_t count = 0;
    Duration total = 0;
    std::array<Duration, kProfileSegmentCount> seg{};
  };
  std::array<Band, 4> bands{Band{"le_p50"}, Band{"p50_p95"},
                            Band{"p95_p99"}, Band{"gt_p99"}};
  for (const Attempt& a : attempts_) {
    if (!a.measured) continue;
    size_t b = 0;
    if (a.total > p99) {
      b = 3;
    } else if (a.total > p95) {
      b = 2;
    } else if (a.total > p50) {
      b = 1;
    }
    ++bands[b].count;
    bands[b].total += a.total;
    for (int s = 0; s < kProfileSegmentCount; ++s) {
      bands[b].seg[static_cast<size_t>(s)] += a.seg[static_cast<size_t>(s)];
    }
  }
  out << ",\"bands\":{";
  first = true;
  for (const Band& band : bands) {
    if (!first) out << ",";
    first = false;
    out << "\"" << band.name << "\":{\"count\":" << band.count
        << ",\"mean_total_ms\":"
        << (band.count > 0
                ? Ms(band.total) / static_cast<double>(band.count)
                : 0.0)
        << ",\"segments_ms\":{";
    bool first_seg = true;
    for (int s = 0; s < kProfileSegmentCount; ++s) {
      const auto segment = static_cast<ProfileSegment>(s);
      if (!first_seg) out << ",";
      first_seg = false;
      out << "\"" << ProfileSegmentName(segment) << "\":"
          << (band.count > 0
                  ? Ms(band.seg[static_cast<size_t>(s)]) /
                        static_cast<double>(band.count)
                  : 0.0);
    }
    out << "}}";
  }
  out << "}}";
  return out.str();
}

Status Profiler::WriteJson(const std::string& path) const {
  std::ofstream file(path, std::ios::trunc);
  if (!file.is_open()) {
    return Status::IOError("cannot open profile output: " + path);
  }
  file << ToJson();
  file.close();
  if (!file.good()) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace screp::obs
