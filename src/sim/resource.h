// FIFO service resources for the simulator.
//
// A Resource models a server with `c` identical service units (e.g. the two
// cores of a replica machine, a disk, or the certifier CPU).  Work is
// submitted as (service_time, completion callback); requests queue FIFO when
// all units are busy.  Utilization and queueing statistics are tracked so
// experiments can report saturation.

#ifndef SCREP_SIM_RESOURCE_H_
#define SCREP_SIM_RESOURCE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "common/sim_time.h"
#include "common/stats.h"
#include "runtime/runtime.h"

namespace screp {

/// A c-server FIFO queueing resource living on a Runtime.
class Resource {
 public:
  using Callback = std::function<void()>;

  /// `servers` is the number of parallel service units (>= 1).
  Resource(runtime::Runtime* rt, std::string name, int servers);

  /// Submits a unit of work needing `service_time` of one server; `done`
  /// fires when service completes (after any queueing delay).
  void Submit(SimTime service_time, Callback done);

  /// Claims a free server immediately (no queueing); false when all are
  /// busy.  The claim lasts until the matching Release().  Lets a client
  /// use the resource as a slot pool whose hold times it controls itself
  /// (e.g. a proxy's apply lanes) while keeping Busy()/Utilization()
  /// meaningful.
  bool TryAcquire();

  /// Returns a server claimed by TryAcquire(), accounting its hold time,
  /// and starts queued Submit() work if any is waiting.
  void Release();

  /// Servers currently idle.
  int FreeServers() const { return servers_ - busy_; }

  /// Name given at construction (for reports).
  const std::string& name() const { return name_; }

  /// Requests currently waiting (not yet in service).
  size_t QueueLength() const { return queue_.size(); }

  /// Servers currently busy.
  int Busy() const { return busy_; }

  /// Total busy server-time accumulated (for utilization reports).
  SimTime BusyTime() const { return busy_time_; }

  /// Utilization in [0,1] over [0, rt->Now()].
  double Utilization() const;

  /// Distribution of queueing delays observed (microseconds).
  const Histogram& queue_delay() const { return queue_delay_; }

  /// Clears statistics (not the queue) — used at the end of warm-up.
  void ResetStats();

 private:
  struct Work {
    SimTime service_time;
    SimTime enqueued_at;
    Callback done;
  };

  void StartService(Work work);

  runtime::Runtime* rt_;
  std::string name_;
  int servers_;
  int busy_ = 0;
  SimTime busy_time_ = 0;
  SimTime stats_since_ = 0;
  std::deque<Work> queue_;
  /// Start times of outstanding TryAcquire() claims.  Releases are
  /// anonymous: pairing each Release() with the *oldest* start still sums
  /// to the true total busy time (the sum is permutation-invariant).
  std::deque<SimTime> hold_starts_;
  Histogram queue_delay_;
};

}  // namespace screp

#endif  // SCREP_SIM_RESOURCE_H_
