#include "sim/resource.h"

#include <utility>

namespace screp {

Resource::Resource(runtime::Runtime* rt, std::string name, int servers)
    : rt_(rt), name_(std::move(name)), servers_(servers) {
  SCREP_CHECK(servers_ >= 1);
}

void Resource::Submit(SimTime service_time, Callback done) {
  if (service_time < 0) service_time = 0;
  Work work{service_time, rt_->Now(), std::move(done)};
  if (busy_ < servers_) {
    StartService(std::move(work));
  } else {
    queue_.push_back(std::move(work));
  }
}

bool Resource::TryAcquire() {
  if (busy_ >= servers_) return false;
  ++busy_;
  hold_starts_.push_back(rt_->Now());
  return true;
}

void Resource::Release() {
  SCREP_CHECK(busy_ > 0);
  SCREP_CHECK(!hold_starts_.empty());
  --busy_;
  busy_time_ += rt_->Now() - hold_starts_.front();
  hold_starts_.pop_front();
  if (!queue_.empty() && busy_ < servers_) {
    Work next = std::move(queue_.front());
    queue_.pop_front();
    StartService(std::move(next));
  }
}

void Resource::StartService(Work work) {
  ++busy_;
  busy_time_ += work.service_time;
  queue_delay_.Add(static_cast<double>(rt_->Now() - work.enqueued_at));
  Callback done = std::move(work.done);
  rt_->Schedule(work.service_time, [this, done = std::move(done)]() {
    --busy_;
    if (!queue_.empty()) {
      Work next = std::move(queue_.front());
      queue_.pop_front();
      StartService(std::move(next));
    }
    done();
  });
}

double Resource::Utilization() const {
  const SimTime elapsed = rt_->Now() - stats_since_;
  if (elapsed <= 0) return 0.0;
  return static_cast<double>(busy_time_) /
         (static_cast<double>(elapsed) * servers_);
}

void Resource::ResetStats() {
  busy_time_ = 0;
  stats_since_ = rt_->Now();
  // In-flight claims only count their post-reset portion.
  for (SimTime& start : hold_starts_) start = rt_->Now();
  queue_delay_.Reset();
}

}  // namespace screp
