// Deterministic discrete-event simulator.
//
// The replicated-database middleware in src/replication/ is written as
// event-driven components: every latency in the system (network hops,
// statement service times, disk writes, think times) is modelled by
// scheduling a continuation at a later virtual time.  Events at the same
// timestamp fire in insertion order, so runs are fully deterministic.

#ifndef SCREP_SIM_SIMULATOR_H_
#define SCREP_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/logging.h"
#include "common/sim_time.h"

namespace screp {

/// The virtual-time event loop.
class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  SimTime Now() const { return now_; }

  /// Schedules `fn` to run at Now() + delay. Negative delays are clamped
  /// to zero (run "immediately", after currently pending same-time events).
  void Schedule(SimTime delay, Callback fn);

  /// Schedules `fn` at an absolute virtual time (>= Now()).
  void ScheduleAt(SimTime when, Callback fn);

  /// Runs events until the queue is empty or virtual time would exceed
  /// `until`. Returns the number of events executed.
  uint64_t RunUntil(SimTime until);

  /// Runs events until the queue drains. Returns events executed.
  uint64_t RunAll();

  /// Executes exactly one event if available. Returns false when empty.
  bool Step();

  /// True when no events are pending.
  bool Empty() const { return queue_.empty(); }

  /// Number of pending events.
  size_t PendingEvents() const { return queue_.size(); }

  /// Total events executed since construction.
  uint64_t EventsExecuted() const { return executed_; }

 private:
  struct Event {
    SimTime when;
    uint64_t sequence;  // tie-breaker: FIFO among same-time events
    Callback fn;
  };

  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.sequence > b.sequence;
    }
  };

  SimTime now_ = 0;
  uint64_t next_sequence_ = 0;
  uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
};

}  // namespace screp

#endif  // SCREP_SIM_SIMULATOR_H_
