#include "sim/simulator.h"

#include <utility>

namespace screp {

void Simulator::Schedule(SimTime delay, Callback fn) {
  if (delay < 0) delay = 0;
  ScheduleAt(now_ + delay, std::move(fn));
}

void Simulator::ScheduleAt(SimTime when, Callback fn) {
  SCREP_CHECK_MSG(when >= now_, "event scheduled in the past: " << when
                                                                << " < "
                                                                << now_);
  queue_.push(Event{when, next_sequence_++, std::move(fn)});
}

bool Simulator::Step() {
  if (queue_.empty()) return false;
  // priority_queue::top() returns const&; the callback must be moved out
  // before pop, so copy the metadata and move the closure via const_cast
  // (safe: the element is removed immediately afterwards).
  Event& top = const_cast<Event&>(queue_.top());
  SimTime when = top.when;
  Callback fn = std::move(top.fn);
  queue_.pop();
  now_ = when;
  ++executed_;
  fn();
  return true;
}

uint64_t Simulator::RunUntil(SimTime until) {
  uint64_t n = 0;
  while (!queue_.empty() && queue_.top().when <= until) {
    Step();
    ++n;
  }
  if (now_ < until) now_ = until;
  return n;
}

uint64_t Simulator::RunAll() {
  uint64_t n = 0;
  while (Step()) ++n;
  return n;
}

}  // namespace screp
