// Session-version accounting for session consistency (paper §IV-C,
// following Daudjee & Salem's lazy replication with ordering guarantees).
//
// The load balancer maps each session id to the V_local its last
// transaction committed at; a new transaction from the same session is
// tagged with that version so the client sees monotonically increasing
// database snapshots and always observes its own updates.

#ifndef SCREP_CORE_SESSION_TRACKER_H_
#define SCREP_CORE_SESSION_TRACKER_H_

#include <cstddef>
#include <unordered_map>

#include "common/types.h"

namespace screp {

/// SID -> latest acknowledged version dictionary.
class SessionTracker {
 public:
  /// Records that `session`'s transaction committed while the replica was
  /// at `v_local`. Monotone per session.
  void OnCommitAcknowledged(SessionId session, DbVersion v_local) {
    DbVersion& v = sessions_[session];
    if (v_local > v) v = v_local;
  }

  /// V_session a new transaction from `session` must wait for (0 for a
  /// session with no history).
  DbVersion RequiredVersion(SessionId session) const {
    auto it = sessions_.find(session);
    return it == sessions_.end() ? 0 : it->second;
  }

  /// Forgets a session (client disconnect).
  void EndSession(SessionId session) { sessions_.erase(session); }

  size_t session_count() const { return sessions_.size(); }

 private:
  std::unordered_map<SessionId, DbVersion> sessions_;
};

}  // namespace screp

#endif  // SCREP_CORE_SESSION_TRACKER_H_
