// The four consistency configurations evaluated in the paper (§III–IV).

#ifndef SCREP_CORE_CONSISTENCY_LEVEL_H_
#define SCREP_CORE_CONSISTENCY_LEVEL_H_

#include <string>

#include "common/status.h"

namespace screp {

/// How the replicated system synchronizes transaction starts/commits.
enum class ConsistencyLevel {
  /// Eager strong consistency (ESC): an update transaction commits at all
  /// replicas before the client is acknowledged (global commit delay).
  kEager = 0,
  /// Lazy coarse-grained strong consistency (LSC): transaction start is
  /// delayed until the replica has applied *all* updates committed so far
  /// (V_local >= V_system).
  kLazyCoarse,
  /// Lazy fine-grained strong consistency (LFC): start is delayed only
  /// until the updates affecting the transaction's table-set are applied.
  kLazyFine,
  /// Session consistency (SC): start is delayed only until the updates of
  /// the client's own previous transactions are applied — a weaker
  /// guarantee, used as the performance upper bound.
  kSession,
  /// Bounded staleness (BSC) — the relaxed-currency model the paper
  /// contrasts against (§VI, Guo et al. / Bernstein et al.): transaction
  /// start is delayed only until the replica is within a configured
  /// number of versions of V_system. Bound 0 degenerates to LSC.
  kBoundedStaleness,
};

/// The four levels the paper evaluates, in the order its figures list
/// them (kBoundedStaleness is an extension and not part of the sweep).
inline constexpr ConsistencyLevel kAllConsistencyLevels[] = {
    ConsistencyLevel::kEager, ConsistencyLevel::kLazyCoarse,
    ConsistencyLevel::kLazyFine, ConsistencyLevel::kSession};

/// Short display name used in result tables: "ESC", "LSC", "LFC", "SC".
const char* ConsistencyLevelName(ConsistencyLevel level);

/// Long descriptive name.
const char* ConsistencyLevelDescription(ConsistencyLevel level);

/// Parses "ESC"/"LSC"/"LFC"/"SC" (case-insensitive).
Result<ConsistencyLevel> ParseConsistencyLevel(const std::string& name);

/// True for the levels that guarantee strong consistency (all but SC).
bool ProvidesStrongConsistency(ConsistencyLevel level);

}  // namespace screp

#endif  // SCREP_CORE_CONSISTENCY_LEVEL_H_
