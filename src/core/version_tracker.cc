#include "core/version_tracker.h"

// Header-only; this translation unit exists so the target has a symbol for
// every module and the header stays self-checked for includes.

namespace screp {}  // namespace screp
