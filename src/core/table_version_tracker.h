// Per-table version tracking for the lazy fine-grained scheme (paper
// §IV-B, Table I).
//
// For each table t the tracker maintains V_t, the database version of the
// latest committed transaction that *wrote* t.  A new transaction with
// table-set TS only needs its replica to reach
//     V_start = max { V_t : t in TS },
// which can be far below V_system when the transaction touches cold or
// read-mostly tables — this is exactly the flexibility that shrinks the
// synchronization start delay.

#ifndef SCREP_CORE_TABLE_VERSION_TRACKER_H_
#define SCREP_CORE_TABLE_VERSION_TRACKER_H_

#include <vector>

#include "common/logging.h"
#include "common/types.h"

namespace screp {

/// Tracks V_t for a dense set of table ids [0, table_count).
class TableVersionTracker {
 public:
  TableVersionTracker() = default;

  /// All V_t start at 0 (the paper's Table I convention).
  explicit TableVersionTracker(size_t table_count)
      : versions_(table_count, 0) {}

  /// Grows to cover at least `table_count` tables.
  void EnsureTables(size_t table_count) {
    if (versions_.size() < table_count) versions_.resize(table_count, 0);
  }

  size_t table_count() const { return versions_.size(); }

  /// Current V_t for one table.
  DbVersion TableVersion(TableId table) const {
    SCREP_CHECK(table >= 0 &&
                static_cast<size_t>(table) < versions_.size());
    return versions_[static_cast<size_t>(table)];
  }

  /// Records that a transaction committed at `commit_version` writing
  /// `tables_written`: V_t <- commit_version for each written table.
  /// Only *written* tables advance — a transaction's table-set may include
  /// read-only accesses which leave V_t untouched (paper §IV-B).
  void OnCommit(DbVersion commit_version,
                const std::vector<TableId>& tables_written) {
    for (TableId t : tables_written) {
      SCREP_CHECK(t >= 0 && static_cast<size_t>(t) < versions_.size());
      DbVersion& v = versions_[static_cast<size_t>(t)];
      if (commit_version > v) v = commit_version;
    }
  }

  /// Merges externally observed table versions (piggybacked on replica
  /// responses), monotonically.
  void Merge(const std::vector<std::pair<TableId, DbVersion>>& updates) {
    for (const auto& [t, version] : updates) {
      SCREP_CHECK(t >= 0);
      EnsureTables(static_cast<size_t>(t) + 1);
      DbVersion& v = versions_[static_cast<size_t>(t)];
      if (version > v) v = version;
    }
  }

  /// V_start for a transaction accessing `table_set`: the highest V_t
  /// among them; 0 when the table-set is empty or all tables are cold.
  DbVersion RequiredVersion(const std::vector<TableId>& table_set) const {
    DbVersion required = 0;
    for (TableId t : table_set) {
      SCREP_CHECK(t >= 0 && static_cast<size_t>(t) < versions_.size());
      required = std::max(required, versions_[static_cast<size_t>(t)]);
    }
    return required;
  }

 private:
  std::vector<DbVersion> versions_;
};

}  // namespace screp

#endif  // SCREP_CORE_TABLE_VERSION_TRACKER_H_
