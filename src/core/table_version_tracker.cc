#include "core/table_version_tracker.h"

// Header-only; see version_tracker.cc for rationale.

namespace screp {}  // namespace screp
