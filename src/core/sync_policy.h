// SyncPolicy — the load balancer's version-tagging brain.
//
// This class combines the trackers (V_system, per-table V_t, session map)
// and answers the two questions the load balancer asks on every message:
//
//  * request path:  with what version requirement do I tag this new
//    transaction? (paper §IV-A/B/C; eager tags nothing)
//  * response path: which trackers advance when a commit acknowledgment
//    (tagged with V_local and the written tables' new versions) flows back
//    to the client?
//
// Keeping this logic in one policy object is what lets the same load
// balancer run any of the four consistency configurations.

#ifndef SCREP_CORE_SYNC_POLICY_H_
#define SCREP_CORE_SYNC_POLICY_H_

#include <utility>
#include <vector>

#include "core/consistency_level.h"
#include "core/session_tracker.h"
#include "core/table_version_tracker.h"
#include "core/version_tracker.h"
#include "obs/eventlog.h"

namespace screp {

/// Per-level synchronization policy for transaction starts.
class SyncPolicy {
 public:
  SyncPolicy(ConsistencyLevel level, size_t table_count,
             DbVersion staleness_bound = 0)
      : level_(level),
        staleness_bound_(staleness_bound),
        table_versions_(table_count) {}

  ConsistencyLevel level() const { return level_; }
  DbVersion staleness_bound() const { return staleness_bound_; }

  /// Which tracker the version tag comes from under this level — i.e.
  /// where the auditor attributes any blocked BEGIN (or, for eager, ack)
  /// time in the staleness report.
  obs::WaitCause wait_cause() const {
    switch (level_) {
      case ConsistencyLevel::kEager:
        return obs::WaitCause::kEagerGlobal;
      case ConsistencyLevel::kLazyCoarse:
        return obs::WaitCause::kSystemVersion;
      case ConsistencyLevel::kLazyFine:
        return obs::WaitCause::kTableVersion;
      case ConsistencyLevel::kSession:
        return obs::WaitCause::kSessionVersion;
      case ConsistencyLevel::kBoundedStaleness:
        return obs::WaitCause::kStalenessBound;
    }
    return obs::WaitCause::kNone;
  }

  /// Fail-over recovery: a freshly promoted load balancer has lost the
  /// soft tracker state, so it must not *under*-synchronize. Setting a
  /// conservative floor (the certifier's current commit version) makes
  /// every non-eager requirement at least `floor` — over-waiting is safe,
  /// under-waiting would silently weaken the guarantee.
  void SetConservativeFloor(DbVersion floor) {
    conservative_floor_ = std::max(conservative_floor_, floor);
    system_version_.OnCommitAcknowledged(floor);
  }
  DbVersion conservative_floor() const { return conservative_floor_; }

  /// The version the destination replica must reach before starting a
  /// transaction from `session` with the given table-set.
  /// Returns 0 ("start immediately") under the eager scheme, where
  /// synchronization happens at commit instead.
  DbVersion RequiredStartVersion(SessionId session,
                                 const std::vector<TableId>& table_set) const {
    switch (level_) {
      case ConsistencyLevel::kEager:
        return 0;  // synchronization happens at commit instead
      case ConsistencyLevel::kLazyCoarse:
        return std::max(conservative_floor_,
                        system_version_.RequiredVersion());
      case ConsistencyLevel::kLazyFine:
        return std::max(conservative_floor_,
                        table_versions_.RequiredVersion(table_set));
      case ConsistencyLevel::kSession:
        return std::max(conservative_floor_,
                        sessions_.RequiredVersion(session));
      case ConsistencyLevel::kBoundedStaleness: {
        const DbVersion v = std::max(conservative_floor_,
                                     system_version_.RequiredVersion());
        return v > staleness_bound_ ? v - staleness_bound_ : 0;
      }
    }
    return 0;
  }

  /// Processes a commit acknowledgment flowing back through the load
  /// balancer: `v_local` is the replica's database version when it
  /// committed, `written_table_versions` the (table, new V_t) pairs for
  /// tables the transaction wrote (empty for read-only transactions).
  void OnCommitAcknowledged(
      SessionId session, DbVersion v_local,
      const std::vector<std::pair<TableId, DbVersion>>&
          written_table_versions) {
    // All trackers are maintained regardless of level: they are cheap,
    // and experiments can then report e.g. "how stale would SC have been"
    // under any configuration.
    system_version_.OnCommitAcknowledged(v_local);
    table_versions_.Merge(written_table_versions);
    sessions_.OnCommitAcknowledged(session, v_local);
  }

  /// Drops a finished session's tracker entry.  Session state is soft:
  /// a later request from the same SID simply re-creates it (with the
  /// conservative floor still applied), so ending early is always safe —
  /// but never ending it grows the map by one entry per session forever.
  void EndSession(SessionId session) { sessions_.EndSession(session); }

  const VersionTracker& system_version() const { return system_version_; }
  const TableVersionTracker& table_versions() const {
    return table_versions_;
  }
  const SessionTracker& sessions() const { return sessions_; }

 private:
  ConsistencyLevel level_;
  DbVersion staleness_bound_;
  DbVersion conservative_floor_ = 0;
  VersionTracker system_version_;
  TableVersionTracker table_versions_;
  SessionTracker sessions_;
};

}  // namespace screp

#endif  // SCREP_CORE_SYNC_POLICY_H_
