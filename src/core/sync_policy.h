// SyncPolicy — the load balancer's version-tagging brain.
//
// This class combines the trackers (V_system, per-table V_t, session map)
// and answers the two questions the load balancer asks on every message:
//
//  * request path:  with what version requirement do I tag this new
//    transaction? (paper §IV-A/B/C; eager tags nothing)
//  * response path: which trackers advance when a commit acknowledgment
//    (tagged with V_local and the written tables' new versions) flows back
//    to the client?
//
// Keeping this logic in one policy object is what lets the same load
// balancer run any of the four consistency configurations.

#ifndef SCREP_CORE_SYNC_POLICY_H_
#define SCREP_CORE_SYNC_POLICY_H_

#include <unordered_map>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "core/consistency_level.h"
#include "core/session_tracker.h"
#include "core/table_version_tracker.h"
#include "core/version_tracker.h"
#include "obs/eventlog.h"

namespace screp {

/// Per-level synchronization policy for transaction starts.
class SyncPolicy {
 public:
  SyncPolicy(ConsistencyLevel level, size_t table_count,
             DbVersion staleness_bound = 0)
      : level_(level),
        staleness_bound_(staleness_bound),
        table_versions_(table_count) {}

  ConsistencyLevel level() const { return level_; }
  DbVersion staleness_bound() const { return staleness_bound_; }

  /// Which tracker the version tag comes from under this level — i.e.
  /// where the auditor attributes any blocked BEGIN (or, for eager, ack)
  /// time in the staleness report.
  obs::WaitCause wait_cause() const {
    switch (level_) {
      case ConsistencyLevel::kEager:
        return obs::WaitCause::kEagerGlobal;
      case ConsistencyLevel::kLazyCoarse:
        return obs::WaitCause::kSystemVersion;
      case ConsistencyLevel::kLazyFine:
        return obs::WaitCause::kTableVersion;
      case ConsistencyLevel::kSession:
        return obs::WaitCause::kSessionVersion;
      case ConsistencyLevel::kBoundedStaleness:
        return obs::WaitCause::kStalenessBound;
    }
    return obs::WaitCause::kNone;
  }

  /// Fail-over recovery: a freshly promoted load balancer has lost the
  /// soft tracker state, so it must not *under*-synchronize. Setting a
  /// conservative floor (the certifier's current commit version) makes
  /// every non-eager requirement at least `floor` — over-waiting is safe,
  /// under-waiting would silently weaken the guarantee.
  void SetConservativeFloor(DbVersion floor) {
    conservative_floor_ = std::max(conservative_floor_, floor);
    system_version_.OnCommitAcknowledged(floor);
  }
  DbVersion conservative_floor() const { return conservative_floor_; }

  /// The version the destination replica must reach before starting a
  /// transaction from `session` with the given table-set.
  /// Returns 0 ("start immediately") under the eager scheme, where
  /// synchronization happens at commit instead.
  DbVersion RequiredStartVersion(SessionId session,
                                 const std::vector<TableId>& table_set) const {
    switch (level_) {
      case ConsistencyLevel::kEager:
        return 0;  // synchronization happens at commit instead
      case ConsistencyLevel::kLazyCoarse:
        return std::max(conservative_floor_,
                        system_version_.RequiredVersion());
      case ConsistencyLevel::kLazyFine:
        return std::max(conservative_floor_,
                        table_versions_.RequiredVersion(table_set));
      case ConsistencyLevel::kSession:
        return std::max(conservative_floor_,
                        sessions_.RequiredVersion(session));
      case ConsistencyLevel::kBoundedStaleness: {
        const DbVersion v = std::max(conservative_floor_,
                                     system_version_.RequiredVersion());
        return v > staleness_bound_ ? v - staleness_bound_ : 0;
      }
    }
    return 0;
  }

  /// Processes a commit acknowledgment flowing back through the load
  /// balancer: `v_local` is the replica's database version when it
  /// committed, `written_table_versions` the (table, new V_t) pairs for
  /// tables the transaction wrote (empty for read-only transactions).
  void OnCommitAcknowledged(
      SessionId session, DbVersion v_local,
      const std::vector<std::pair<TableId, DbVersion>>&
          written_table_versions) {
    // All trackers are maintained regardless of level: they are cheap,
    // and experiments can then report e.g. "how stale would SC have been"
    // under any configuration.
    system_version_.OnCommitAcknowledged(v_local);
    table_versions_.Merge(written_table_versions);
    sessions_.OnCommitAcknowledged(session, v_local);
  }

  /// Switches the policy into sharded (partitioned-certification) mode:
  /// versions are per shard, so every tracker the level consults becomes
  /// per-shard.  `table_to_shard[t]` assigns each table its shard.
  /// Supported levels at K > 1: LSC (per-shard V_system trackers), LFC
  /// (the per-table V_t values are shard-local and only ever compared
  /// within a table's own shard) and SC (per-session per-shard map);
  /// eager and bounded staleness are refused by the system before this
  /// is called.
  void EnableSharding(std::vector<int32_t> table_to_shard, int shard_count) {
    SCREP_CHECK_MSG(level_ != ConsistencyLevel::kEager &&
                        level_ != ConsistencyLevel::kBoundedStaleness,
                    "consistency level unsupported with sharding");
    table_to_shard_ = std::move(table_to_shard);
    shard_count_ = shard_count;
    shard_system_.assign(static_cast<size_t>(shard_count), VersionTracker());
  }
  bool sharded() const { return shard_count_ > 0; }
  int shard_count() const { return shard_count_; }

  /// Sharded analog of RequiredStartVersion: the version each touched
  /// shard's stream must have published at the destination replica
  /// before BEGIN.  `shards` is the transaction's (sorted) shard-set,
  /// derived from its declared table-set.
  std::vector<std::pair<int32_t, DbVersion>> ShardRequirements(
      SessionId session, const std::vector<int32_t>& shards,
      const std::vector<TableId>& table_set) const {
    std::vector<std::pair<int32_t, DbVersion>> required;
    required.reserve(shards.size());
    switch (level_) {
      case ConsistencyLevel::kLazyCoarse:
        for (int32_t s : shards) {
          required.emplace_back(
              s, shard_system_[static_cast<size_t>(s)].RequiredVersion());
        }
        break;
      case ConsistencyLevel::kLazyFine:
        // Per-table V_t values are shard-local, so the fine-grained max
        // is taken per shard over the table-set's tables in that shard.
        for (int32_t s : shards) {
          DbVersion v = 0;
          for (TableId t : table_set) {
            if (table_to_shard_[static_cast<size_t>(t)] != s) continue;
            v = std::max(v, table_versions_.TableVersion(t));
          }
          required.emplace_back(s, v);
        }
        break;
      case ConsistencyLevel::kSession: {
        auto it = sharded_sessions_.find(session);
        for (int32_t s : shards) {
          required.emplace_back(
              s, it == sharded_sessions_.end()
                     ? 0
                     : it->second[static_cast<size_t>(s)]);
        }
        break;
      }
      case ConsistencyLevel::kEager:
      case ConsistencyLevel::kBoundedStaleness:
        SCREP_CHECK_MSG(false, "consistency level unsupported with sharding");
    }
    return required;
  }

  /// Sharded response path: `shard_locals` carries the replica's
  /// published version per hosted shard at acknowledgment time, the
  /// sharded analog of the V_local tag.
  void OnCommitAcknowledgedSharded(
      SessionId session,
      const std::vector<std::pair<int32_t, DbVersion>>& shard_locals,
      const std::vector<std::pair<TableId, DbVersion>>&
          written_table_versions) {
    for (const auto& [s, v] : shard_locals) {
      shard_system_[static_cast<size_t>(s)].OnCommitAcknowledged(v);
    }
    table_versions_.Merge(written_table_versions);
    auto [it, inserted] = sharded_sessions_.try_emplace(session);
    if (inserted) it->second.assign(static_cast<size_t>(shard_count_), 0);
    for (const auto& [s, v] : shard_locals) {
      DbVersion& entry = it->second[static_cast<size_t>(s)];
      entry = std::max(entry, v);
    }
  }

  /// Latest acknowledged version of one shard (the per-shard V_system).
  DbVersion ShardSystemVersion(int32_t shard) const {
    return shard_system_[static_cast<size_t>(shard)].SystemVersion();
  }

  /// Drops a finished session's tracker entry.  Session state is soft:
  /// a later request from the same SID simply re-creates it (with the
  /// conservative floor still applied), so ending early is always safe —
  /// but never ending it grows the map by one entry per session forever.
  void EndSession(SessionId session) {
    sessions_.EndSession(session);
    sharded_sessions_.erase(session);
  }

  const VersionTracker& system_version() const { return system_version_; }
  const TableVersionTracker& table_versions() const {
    return table_versions_;
  }
  const SessionTracker& sessions() const { return sessions_; }

 private:
  ConsistencyLevel level_;
  DbVersion staleness_bound_;
  DbVersion conservative_floor_ = 0;
  VersionTracker system_version_;
  TableVersionTracker table_versions_;
  SessionTracker sessions_;

  /// Sharded mode (shard_count_ == 0 = single-stream, all unused).
  int shard_count_ = 0;
  std::vector<int32_t> table_to_shard_;
  std::vector<VersionTracker> shard_system_;
  std::unordered_map<SessionId, std::vector<DbVersion>> sharded_sessions_;
};

}  // namespace screp

#endif  // SCREP_CORE_SYNC_POLICY_H_
