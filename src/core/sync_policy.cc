#include "core/sync_policy.h"

// Header-only; see version_tracker.cc for rationale.

namespace screp {}  // namespace screp
