// Global-commit accounting for eager strong consistency (paper §IV-D).
//
// The certifier maintains a counter per committed update transaction.
// Each time a replica reports that it committed the transaction (locally
// or as a refresh), the counter is incremented; when it reaches the number
// of replicas, the transaction is *globally committed* and the originating
// replica may finally acknowledge the client.

#ifndef SCREP_CORE_EAGER_TRACKER_H_
#define SCREP_CORE_EAGER_TRACKER_H_

#include <unordered_map>
#include <vector>

#include "common/logging.h"
#include "common/types.h"

namespace screp {

/// Per-transaction replica-commit counters, with crash-recovery
/// membership support: when a replica crashes, globally committing no
/// longer waits for it (the crashed replica catches up from the
/// certifier's durable log on recovery, so its commit is guaranteed
/// eventually — the standard crash-recovery argument).
class EagerCommitTracker {
 public:
  explicit EagerCommitTracker(int replica_count)
      : replica_count_(replica_count), active_count_(replica_count) {
    SCREP_CHECK(replica_count_ >= 1);
  }

  /// Registers a freshly certified transaction (counter starts at 0).
  void OnCertified(TxnId txn) { counters_.emplace(txn, 0); }

  /// Records one replica's commit of `txn`. Returns true exactly once:
  /// when the count reaches the number of *live* replicas (global commit).
  /// Reports for unknown transactions are ignored (a recovered replica
  /// re-reports commits whose global commit already completed while it
  /// was down).
  bool OnReplicaCommitted(TxnId txn) {
    auto it = counters_.find(txn);
    if (it == counters_.end()) return false;
    if (++it->second >= active_count_) {
      counters_.erase(it);
      return true;
    }
    return false;
  }

  /// Adjusts the live-replica count after a crash or recovery. Returns
  /// the transactions that become globally committed because the bar
  /// dropped (empty on recovery).
  std::vector<TxnId> SetActiveReplicaCount(int active) {
    SCREP_CHECK(active >= 1 && active <= replica_count_);
    active_count_ = active;
    std::vector<TxnId> ready;
    for (auto it = counters_.begin(); it != counters_.end();) {
      if (it->second >= active_count_) {
        ready.push_back(it->first);
        it = counters_.erase(it);
      } else {
        ++it;
      }
    }
    return ready;
  }

  /// Transactions still waiting for global commit.
  size_t pending() const { return counters_.size(); }

  int replica_count() const { return replica_count_; }
  int active_count() const { return active_count_; }

 private:
  int replica_count_;
  int active_count_;
  std::unordered_map<TxnId, int> counters_;
};

}  // namespace screp

#endif  // SCREP_CORE_EAGER_TRACKER_H_
