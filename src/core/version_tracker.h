// V_system tracking for the lazy coarse-grained scheme (paper §IV-A).
//
// The load balancer maintains V_system, "the database version of the
// latest transaction committed and acknowledged to the clients".  A new
// transaction is tagged with the current V_system; its replica must reach
// V_local >= V_system before starting it, which guarantees the
// transaction observes every update any client has been told about.

#ifndef SCREP_CORE_VERSION_TRACKER_H_
#define SCREP_CORE_VERSION_TRACKER_H_

#include "common/types.h"

namespace screp {

/// Tracks the system-wide acknowledged database version.
class VersionTracker {
 public:
  /// Current V_system.
  DbVersion SystemVersion() const { return v_system_; }

  /// Called when a replica's commit acknowledgment (tagged with the
  /// replica's V_local) passes through the load balancer on its way to the
  /// client. Monotone: stale acknowledgments never move V_system back.
  void OnCommitAcknowledged(DbVersion v_local) {
    if (v_local > v_system_) v_system_ = v_local;
  }

  /// Version a new transaction must wait for under the coarse-grained
  /// scheme: everything acknowledged so far.
  DbVersion RequiredVersion() const { return v_system_; }

 private:
  DbVersion v_system_ = 0;
};

}  // namespace screp

#endif  // SCREP_CORE_VERSION_TRACKER_H_
