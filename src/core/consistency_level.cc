#include "core/consistency_level.h"

#include <algorithm>
#include <cctype>

namespace screp {

const char* ConsistencyLevelName(ConsistencyLevel level) {
  switch (level) {
    case ConsistencyLevel::kEager:
      return "ESC";
    case ConsistencyLevel::kLazyCoarse:
      return "LSC";
    case ConsistencyLevel::kLazyFine:
      return "LFC";
    case ConsistencyLevel::kSession:
      return "SC";
    case ConsistencyLevel::kBoundedStaleness:
      return "BSC";
  }
  return "?";
}

const char* ConsistencyLevelDescription(ConsistencyLevel level) {
  switch (level) {
    case ConsistencyLevel::kEager:
      return "eager strong consistency";
    case ConsistencyLevel::kLazyCoarse:
      return "lazy coarse-grained strong consistency";
    case ConsistencyLevel::kLazyFine:
      return "lazy fine-grained strong consistency";
    case ConsistencyLevel::kSession:
      return "session consistency";
    case ConsistencyLevel::kBoundedStaleness:
      return "bounded staleness (relaxed currency)";
  }
  return "?";
}

Result<ConsistencyLevel> ParseConsistencyLevel(const std::string& name) {
  std::string upper = name;
  std::transform(upper.begin(), upper.end(), upper.begin(), [](char c) {
    return static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  });
  if (upper == "ESC" || upper == "EAGER") return ConsistencyLevel::kEager;
  if (upper == "LSC" || upper == "COARSE") return ConsistencyLevel::kLazyCoarse;
  if (upper == "LFC" || upper == "FINE") return ConsistencyLevel::kLazyFine;
  if (upper == "SC" || upper == "SESSION") return ConsistencyLevel::kSession;
  if (upper == "BSC" || upper == "BOUNDED") {
    return ConsistencyLevel::kBoundedStaleness;
  }
  return Status::InvalidArgument("unknown consistency level '" + name + "'");
}

bool ProvidesStrongConsistency(ConsistencyLevel level) {
  return level != ConsistencyLevel::kSession &&
         level != ConsistencyLevel::kBoundedStaleness;
}

}  // namespace screp
