// Typed point-to-point channels over the simulator.
//
// A Channel<Msg> is one *directed* link between two components: Send()
// schedules delivery of a message copy to the receiving handler after
// the link's modelled latency (link.h).  Channels are the system's only
// transport — every inter-component hop (client<->LB, LB<->proxy,
// proxy<->certifier, refresh fan-out, standby stream) is a named channel,
// which gives each hop per-link telemetry, fault injection, and crash
// semantics (mute/close) in one place.
//
// Delivery semantics:
//  - Default (no jitter/faults): exactly one Schedule(base_latency) per
//    Send, in call order — indistinguishable from direct scheduling.
//  - FIFO per link is preserved under jitter via a delivery-time
//    watermark; only messages hit by the reorder fault may overtake.
//  - kReliable links stamp sequence numbers, retransmit fault-dropped
//    messages, and release arrivals to the handler in send order
//    (duplicates are suppressed, gaps are held).
//  - A muted or partitioned channel, or one whose destination Endpoint
//    is closed, drops at Send() (counted) — crash/partition injection.

#ifndef SCREP_NET_CHANNEL_H_
#define SCREP_NET_CHANNEL_H_

#include <functional>
#include <map>
#include <string>
#include <utility>

#include "common/logging.h"
#include "common/rng.h"
#include "net/link.h"
#include "obs/metrics_registry.h"
#include "runtime/runtime.h"

namespace screp::net {

/// One party of the cluster (a replica, the LB, the certifier, the
/// client fleet).  Channels hold their destination endpoint; closing it
/// (crash-stop) makes every channel pointed at it drop at Send until
/// reopened.
class Endpoint {
 public:
  explicit Endpoint(std::string name = "") : name_(std::move(name)) {}

  void Close() { closed_ = true; }
  void Open() { closed_ = false; }
  bool closed() const { return closed_; }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  bool closed_ = false;
};

/// A directed, typed message channel.  Not copyable/movable: handlers and
/// in-flight deliveries capture `this`.
template <typename Msg>
class Channel {
 public:
  using Handler = std::function<void(const Msg&)>;
  using SizeFn = std::function<size_t(const Msg&)>;
  /// Observes each delivery the instant before the handler runs:
  /// (message, send time, delivery time).  Retransmitted and resequenced
  /// messages report their *original* send time, so the observed interval
  /// is the full transport delay the receiver experienced.
  using TraceFn = std::function<void(const Msg&, TimePoint, TimePoint)>;

  Channel(runtime::Runtime* rt, std::string name, const LinkConfig& config,
          uint64_t seed)
      : rt_(rt), name_(std::move(name)), config_(config), rng_(seed) {}
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Installs the receiver.  Must be set before the first Send.
  void SetHandler(Handler handler) { handler_ = std::move(handler); }
  /// Installs the payload size model (drives per-byte latency and the
  /// bytes counter).  Channels without one count zero-byte messages.
  void SetSizeFn(SizeFn fn) { size_fn_ = std::move(fn); }
  /// Points the channel at its destination endpoint; a closed endpoint
  /// drops sends.
  void SetDestination(Endpoint* dst) { dst_ = dst; }
  /// Installs a delivery observer (e.g. per-hop latency spans).  Purely
  /// passive: it runs right before the handler on every delivery.
  void SetTraceFn(TraceFn fn) { trace_fn_ = std::move(fn); }

  /// Registers this channel's telemetry under "net.<name>.*":
  /// messages/bytes/dropped/redelivered counters plus an in_flight
  /// callback gauge polled by the sampler.
  void AttachMetrics(obs::MetricsRegistry* registry) {
    const std::string prefix = "net." + name_ + ".";
    ctr_messages_ = registry->GetCounter(prefix + "messages");
    ctr_bytes_ = registry->GetCounter(prefix + "bytes");
    ctr_dropped_ = registry->GetCounter(prefix + "dropped");
    ctr_redelivered_ = registry->GetCounter(prefix + "redelivered");
    registry->RegisterCallbackGauge(prefix + "in_flight", [this]() {
      return static_cast<double>(stats_.in_flight);
    });
  }

  /// Transmits one message toward the handler.
  void Send(const Msg& msg) {
    SCREP_CHECK_MSG(handler_ != nullptr,
                    "channel " << name_ << " has no handler");
    ++stats_.sent;
    if (ctr_messages_ != nullptr) ctr_messages_->Increment();
    const size_t bytes = size_fn_ ? size_fn_(msg) : 0;
    stats_.bytes += static_cast<int64_t>(bytes);
    if (ctr_bytes_ != nullptr) {
      ctr_bytes_->Increment(static_cast<int64_t>(bytes));
    }
    if (Blocked()) {
      // Administrative drop (crash/partition): no sequence number is
      // consumed, so a reliable link sees no gap from a dead peer.
      CountDrop();
      return;
    }
    const uint64_t seq = next_seq_++;
    const TimePoint sent = rt_->Now();
    Transmit(msg, bytes, seq, sent, /*redelivery=*/false,
             /*exempt_fifo=*/false);
    if (config_.duplicate_probability > 0 &&
        rng_.NextBool(config_.duplicate_probability)) {
      ++stats_.duplicated;
      Transmit(msg, bytes, seq, sent, /*redelivery=*/false,
               /*exempt_fifo=*/true);
    }
  }

  /// Crash semantics, sender side: a muted channel silently swallows
  /// sends (counted as drops).
  void SetMuted(bool muted) { muted_ = muted; }
  bool muted() const { return muted_; }

  /// Directed partition: same drop behaviour as mute, flipped by fault
  /// injection rather than crash bookkeeping.
  void SetPartitioned(bool partitioned) { partitioned_ = partitioned; }
  bool partitioned() const { return partitioned_; }

  /// Forgets all in-flight traffic and sequencing state: cancels pending
  /// retransmissions and deliveries, clears the reorder hold, and
  /// fast-forwards the receive cursor to the next send.  Owners call
  /// this when the receiver is resynchronized out of band (recovery /
  /// partition-heal catch-up from the certifier's durable log), which
  /// repairs any sequence gap left by retransmissions that gave up.
  void Reset() {
    ++epoch_;
    stats_.in_flight = 0;
    hold_.clear();
    next_deliver_seq_ = next_seq_;
    fifo_watermark_ = 0;
  }

  const LinkStats& stats() const { return stats_; }
  const std::string& name() const { return name_; }
  const LinkConfig& config() const { return config_; }

 private:
  bool Blocked() const {
    return muted_ || partitioned_ || (dst_ != nullptr && dst_->closed());
  }

  void CountDrop() {
    ++stats_.dropped;
    if (ctr_dropped_ != nullptr) ctr_dropped_->Increment();
  }

  /// Schedules one copy of `msg` for delivery (or its loss + possible
  /// retransmission).  `sent` is the original Send() time, preserved
  /// across retransmissions for the delivery observer.
  void Transmit(const Msg& msg, size_t bytes, uint64_t seq, TimePoint sent,
                bool redelivery, bool exempt_fifo) {
    if (redelivery) {
      if (Blocked()) {
        // The peer died while the retransmission was pending: give up —
        // catch-up (plus Reset) takes over.
        CountDrop();
        return;
      }
      ++stats_.redelivered;
      if (ctr_redelivered_ != nullptr) ctr_redelivered_->Increment();
    }
    if (config_.drop_probability > 0 &&
        rng_.NextBool(config_.drop_probability)) {
      CountDrop();
      if (config_.reliability == Reliability::kReliable) {
        const uint64_t epoch = epoch_;
        rt_->Schedule(config_.EffectiveRetransmitTimeout(),
                       [this, msg, bytes, seq, sent, epoch]() {
                         if (epoch != epoch_) return;
                         Transmit(msg, bytes, seq, sent, /*redelivery=*/true,
                                  /*exempt_fifo=*/true);
                       });
      }
      return;
    }
    Duration delay = config_.base_latency;
    if (config_.per_byte_us > 0 && bytes > 0) {
      delay += static_cast<Duration>(config_.per_byte_us *
                                    static_cast<double>(bytes));
    }
    if (config_.jitter_mean > 0) {
      delay += static_cast<Duration>(
          rng_.NextExponential(static_cast<double>(config_.jitter_mean)));
    }
    bool reordered = false;
    if (config_.reorder_probability > 0 &&
        rng_.NextBool(config_.reorder_probability)) {
      reordered = true;
      ++stats_.reordered;
      if (config_.reorder_window > 0) {
        delay += static_cast<Duration>(rng_.NextBounded(
            static_cast<uint64_t>(config_.reorder_window) + 1));
      }
    }
    TimePoint arrival = rt_->Now() + delay;
    if (config_.fifo && !reordered && !exempt_fifo) {
      // FIFO clamp: never schedule a delivery before an earlier one on
      // this link (ties preserve send order — the simulator fires
      // same-time events in insertion order).
      if (arrival < fifo_watermark_) arrival = fifo_watermark_;
      fifo_watermark_ = arrival;
    }
    ++stats_.in_flight;
    const uint64_t epoch = epoch_;
    rt_->Schedule(arrival - rt_->Now(), [this, msg, seq, sent, epoch]() {
      if (epoch != epoch_) return;  // Reset while in flight
      --stats_.in_flight;
      Arrive(msg, seq, sent);
    });
  }

  void Deliver(const Msg& msg, TimePoint sent) {
    ++stats_.delivered;
    if (trace_fn_) trace_fn_(msg, sent, rt_->Now());
    handler_(msg);
  }

  void Arrive(const Msg& msg, uint64_t seq, TimePoint sent) {
    if (config_.reliability != Reliability::kReliable) {
      Deliver(msg, sent);
      return;
    }
    // Reliable: release in send order, exactly once.
    if (seq < next_deliver_seq_) return;  // stale duplicate / late copy
    if (seq > next_deliver_seq_) {
      hold_.emplace(seq, std::make_pair(msg, sent));  // hold until gap fills
      return;
    }
    ++next_deliver_seq_;
    Deliver(msg, sent);
    for (auto it = hold_.begin();
         it != hold_.end() && it->first == next_deliver_seq_;
         it = hold_.begin()) {
      std::pair<Msg, TimePoint> held = std::move(it->second);
      hold_.erase(it);
      ++next_deliver_seq_;
      Deliver(held.first, held.second);
    }
  }

  runtime::Runtime* rt_;
  std::string name_;
  LinkConfig config_;
  Rng rng_;
  Handler handler_;
  SizeFn size_fn_;
  TraceFn trace_fn_;
  Endpoint* dst_ = nullptr;

  bool muted_ = false;
  bool partitioned_ = false;
  /// Bumped by Reset(): in-flight deliveries and pending retransmissions
  /// from before the reset fire into silence.
  uint64_t epoch_ = 0;

  /// Latest scheduled delivery time (the FIFO clamp).
  TimePoint fifo_watermark_ = 0;

  /// Next sequence number to stamp (reliable links; assigned always so
  /// Reset can fast-forward).
  uint64_t next_seq_ = 0;
  /// Next sequence number the handler is owed.
  uint64_t next_deliver_seq_ = 0;
  /// Out-of-order arrivals awaiting their turn, with their send times.
  std::map<uint64_t, std::pair<Msg, TimePoint>> hold_;

  LinkStats stats_;
  obs::Counter* ctr_messages_ = nullptr;
  obs::Counter* ctr_bytes_ = nullptr;
  obs::Counter* ctr_dropped_ = nullptr;
  obs::Counter* ctr_redelivered_ = nullptr;
};

}  // namespace screp::net

#endif  // SCREP_NET_CHANNEL_H_
