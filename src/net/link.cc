#include "net/link.h"

#include <sstream>

namespace screp::net {

std::string LinkStats::ToString() const {
  std::ostringstream out;
  out << "sent=" << sent << " delivered=" << delivered << " bytes=" << bytes
      << " dropped=" << dropped << " duplicated=" << duplicated
      << " reordered=" << reordered << " redelivered=" << redelivered
      << " in_flight=" << in_flight;
  return out.str();
}

}  // namespace screp::net
