// Link modeling for the simulated cluster interconnect.
//
// A LinkConfig describes one directed link's behaviour: base one-way
// latency, optional jitter, per-byte serialization cost, and fault
// injection knobs (drop / duplicate / reorder).  Channels (channel.h)
// consume a LinkConfig to schedule message deliveries over the
// simulator.  The default configuration — base latency only — makes a
// channel Send() exactly one Schedule(base_latency) call, so a system
// wired over default links replays the identical event sequence as
// direct scheduling.

#ifndef SCREP_NET_LINK_H_
#define SCREP_NET_LINK_H_

#include <cstdint>
#include <string>

#include "common/sim_time.h"

namespace screp::net {

/// Delivery guarantee of a channel.
enum class Reliability {
  /// Fire-and-forget: a message lost to the drop fault is gone.  All
  /// channels are loss-free under the default fault knobs, so this is
  /// the default mode.
  kBestEffort = 0,
  /// Sequence-number + redelivery: every Send is stamped with a
  /// per-channel sequence number; a message lost to the drop fault is
  /// retransmitted after `retransmit_timeout`, and the receiver releases
  /// messages to the handler in strict send order, holding out-of-order
  /// arrivals.  For channels that must survive loss (the certifier ->
  /// replica refresh stream, whose consumer already tolerates idempotent
  /// re-apply).  Retransmission gives up while the link is muted,
  /// partitioned or the destination endpoint is closed — recovery
  /// catch-up (Certifier::FetchSince) repairs what a dead link missed,
  /// after the owner calls Reset() on heal.
  kReliable,
};

/// One directed link's latency / size / fault model.
struct LinkConfig {
  /// Base one-way propagation latency.
  Duration base_latency = 0;
  /// Mean of an exponential jitter term added to every delivery
  /// (0 = deterministic latency).  FIFO order is preserved by default:
  /// a jittered message never overtakes an earlier one on the same link.
  Duration jitter_mean = 0;
  /// Serialization/transmission cost per payload byte (fractional
  /// microseconds; ~0.008 models a gigabit link).  Only channels with a
  /// size function (writeset-bearing ones) pay it.
  double per_byte_us = 0.0;

  // Fault injection (all off by default).
  /// Probability a message is lost in flight.
  double drop_probability = 0.0;
  /// Probability a message is delivered twice (second copy drawn with
  /// independent latency, exempt from the FIFO clamp).
  double duplicate_probability = 0.0;
  /// Probability a message is deliberately delayed past later traffic
  /// (breaks FIFO for that message).
  double reorder_probability = 0.0;
  /// Extra uniform [0, reorder_window] delay a reordered message draws.
  Duration reorder_window = 0;

  /// Preserve per-link FIFO delivery despite jitter (default).  Messages
  /// hit by the reorder fault are exempt.
  bool fifo = true;
  /// Delivery guarantee (see Reliability).
  Reliability reliability = Reliability::kBestEffort;
  /// Reliable mode: how long the sender waits before retransmitting a
  /// lost message.  0 derives a default of 4 * base_latency.
  Duration retransmit_timeout = 0;

  constexpr LinkConfig() = default;
  // NOLINTNEXTLINE(google-explicit-constructor): a bare latency is a link.
  constexpr LinkConfig(Duration latency) : base_latency(latency) {}

  /// The link's nominal round-trip time — the named replacement for the
  /// magic `2 * one_way` delays in recovery / failover paths.
  constexpr Duration RoundTrip() const { return 2 * base_latency; }

  Duration EffectiveRetransmitTimeout() const {
    if (retransmit_timeout > 0) return retransmit_timeout;
    const Duration rto = 4 * base_latency;
    return rto > 0 ? rto : 1;
  }
};

/// Running totals a channel keeps about its traffic.
struct LinkStats {
  int64_t sent = 0;         ///< Send() calls accepted (incl. later drops)
  int64_t delivered = 0;    ///< handler invocations
  int64_t bytes = 0;        ///< payload bytes across all sends
  int64_t dropped = 0;      ///< fault drops + mute/partition/closed drops
  int64_t duplicated = 0;   ///< extra copies injected by the duplicate fault
  int64_t reordered = 0;    ///< messages hit by the reorder fault
  int64_t redelivered = 0;  ///< reliable-mode retransmissions attempted
  int64_t in_flight = 0;    ///< copies currently scheduled for delivery

  std::string ToString() const;
};

}  // namespace screp::net

#endif  // SCREP_NET_LINK_H_
