#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace screp {

void StatAccumulator::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void StatAccumulator::Merge(const StatAccumulator& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void StatAccumulator::Reset() { *this = StatAccumulator(); }

double StatAccumulator::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double StatAccumulator::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram() : buckets_(kNumBuckets, 0) {}

size_t Histogram::BucketFor(double value) {
  if (value < 1.0) return 0;
  // 32 buckets per octave of value: bucket = 32 * log2(value).
  const double idx = 32.0 * std::log2(value);
  const size_t i = static_cast<size_t>(idx) + 1;
  return std::min(i, kNumBuckets - 1);
}

double Histogram::BucketUpper(size_t index) {
  if (index == 0) return 1.0;
  return std::exp2(static_cast<double>(index) / 32.0);
}

void Histogram::Add(double value) {
  if (value < 0) value = 0;
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  ++buckets_[BucketFor(value)];
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (size_t i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

double Histogram::Percentile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  double cumulative = 0.0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    cumulative += static_cast<double>(buckets_[i]);
    if (cumulative >= target) {
      return std::min(BucketUpper(i), max_);
    }
  }
  return max_;
}

std::string Histogram::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%lld mean=%.2f p50=%.2f p95=%.2f p99=%.2f max=%.2f",
                static_cast<long long>(count_), mean(), Percentile(0.5),
                Percentile(0.95), Percentile(0.99), max());
  return buf;
}

}  // namespace screp
