// Statistics accumulators used by the experiment harness: running moments
// and a log-bucketed latency histogram with percentile queries.

#ifndef SCREP_COMMON_STATS_H_
#define SCREP_COMMON_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace screp {

/// Running count / mean / min / max / variance (Welford's algorithm).
class StatAccumulator {
 public:
  /// Adds one observation.
  void Add(double x);

  /// Merges another accumulator into this one.
  void Merge(const StatAccumulator& other);

  /// Discards all observations.
  void Reset();

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  /// Population variance; 0 for fewer than two observations.
  double variance() const;
  double stddev() const;
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Latency histogram with geometrically sized buckets covering
/// [1us, ~100s]; supports approximate percentiles with bounded relative
/// error (~2%), in the spirit of the HdrHistogram used by db_bench.
class Histogram {
 public:
  Histogram();

  /// Records one value (any non-negative quantity; typically microseconds).
  void Add(double value);

  /// Merges another histogram into this one.
  void Merge(const Histogram& other);

  /// Discards all recordings.
  void Reset();

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? sum_ / count_ : 0.0; }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }

  /// Value at quantile q in [0, 1] (e.g. 0.99); 0 when empty.
  double Percentile(double q) const;
  double Median() const { return Percentile(0.5); }

  /// One-line summary: count / mean / p50 / p95 / p99 / max.
  std::string Summary() const;

 private:
  /// Index of the bucket containing `value`.
  static size_t BucketFor(double value);
  /// Representative (upper bound) value of a bucket.
  static double BucketUpper(size_t index);

  static constexpr size_t kNumBuckets = 512;

  std::vector<int64_t> buckets_;
  int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace screp

#endif  // SCREP_COMMON_STATS_H_
