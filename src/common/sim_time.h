// Time used throughout the middleware, the simulator and the wall-clock
// runtime.
//
// Time is an integer count of microseconds so that event ordering is exact
// and simulated runs are bit-for-bit reproducible (no floating-point
// drift).  The same representation serves both clocks: under the
// deterministic simulator a TimePoint is virtual time since the start of
// the run; under the threaded runtime it is steady-clock time since the
// runtime started.  Code above the Runtime seam (runtime/runtime.h) should
// use the neutral names:
//
//   Duration   — a span of time (latencies, service times, timeouts)
//   TimePoint  — an instant on the runtime's clock (Runtime::Now())
//
// SimTime remains as the historical alias; simulator-internal code keeps
// it, and the three names are interchangeable by construction (all are
// int64_t microseconds).

#ifndef SCREP_COMMON_SIM_TIME_H_
#define SCREP_COMMON_SIM_TIME_H_

#include <cstdint>

namespace screp {

/// A span of time, in microseconds.
using Duration = int64_t;

/// A point on the runtime's clock (virtual or steady), in microseconds.
using TimePoint = int64_t;

/// Historical alias (virtual time); prefer Duration/TimePoint above the
/// Runtime seam.
using SimTime = int64_t;

/// Duration helpers.
constexpr Duration Micros(int64_t us) { return us; }
constexpr Duration Millis(double ms) {
  return static_cast<Duration>(ms * 1000.0);
}
constexpr Duration Seconds(double s) {
  return static_cast<Duration>(s * 1e6);
}

/// Conversions for reporting.
constexpr double ToMillis(Duration t) { return static_cast<double>(t) / 1e3; }
constexpr double ToSeconds(Duration t) { return static_cast<double>(t) / 1e6; }

}  // namespace screp

#endif  // SCREP_COMMON_SIM_TIME_H_
