// Virtual time used throughout the simulator and middleware.
//
// Time is an integer count of microseconds so that event ordering is exact
// and runs are bit-for-bit reproducible (no floating-point drift).

#ifndef SCREP_COMMON_SIM_TIME_H_
#define SCREP_COMMON_SIM_TIME_H_

#include <cstdint>

namespace screp {

/// A point in (or duration of) virtual time, in microseconds.
using SimTime = int64_t;

/// Duration helpers.
constexpr SimTime Micros(int64_t us) { return us; }
constexpr SimTime Millis(double ms) {
  return static_cast<SimTime>(ms * 1000.0);
}
constexpr SimTime Seconds(double s) {
  return static_cast<SimTime>(s * 1e6);
}

/// Conversions for reporting.
constexpr double ToMillis(SimTime t) { return static_cast<double>(t) / 1e3; }
constexpr double ToSeconds(SimTime t) { return static_cast<double>(t) / 1e6; }

}  // namespace screp

#endif  // SCREP_COMMON_SIM_TIME_H_
