// Status / Result error model, in the style of Arrow and RocksDB.
//
// Operational code paths in this library do not throw exceptions: every
// fallible operation returns a Status, or a Result<T> that carries either a
// value or a Status.  Programming errors (violated invariants) abort via
// SCREP_CHECK in logging.h.

#ifndef SCREP_COMMON_STATUS_H_
#define SCREP_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace screp {

/// Machine-readable category of a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kConflict,        ///< write-write conflict detected (certification failure)
  kAborted,         ///< transaction aborted (e.g. early certification)
  kOutOfRange,
  kNotSupported,
  kInternal,
  kIOError,
};

/// Returns a human-readable name for a StatusCode ("OK", "Conflict", ...).
const char* StatusCodeName(StatusCode code);

/// The outcome of a fallible operation: a code plus an optional message.
///
/// Statuses are cheap to copy in the OK case (no allocation) and carry a
/// heap-allocated message otherwise.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Conflict(std::string msg) {
    return Status(StatusCode::kConflict, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsConflict() const { return code_ == StatusCode::kConflict; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or a non-OK Status explaining its absence.
template <typename T>
class Result {
 public:
  /// Implicit from a value: success.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from a non-OK status: failure.
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Pre-condition: ok().
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

  /// Returns the contained value or `fallback` when failed.
  T value_or(T fallback) const {
    return value_.has_value() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace screp

/// Evaluates `expr` (a Status expression) and returns it from the enclosing
/// function if it is not OK.
#define SCREP_RETURN_NOT_OK(expr)              \
  do {                                         \
    ::screp::Status _st = (expr);              \
    if (!_st.ok()) return _st;                 \
  } while (0)

#define SCREP_CONCAT_IMPL_(a, b) a##b
#define SCREP_CONCAT_(a, b) SCREP_CONCAT_IMPL_(a, b)

#define SCREP_ASSIGN_OR_RETURN_IMPL_(result, lhs, rexpr) \
  auto result = (rexpr);                                 \
  if (!result.ok()) return result.status();              \
  lhs = std::move(result).value()

/// Evaluates `rexpr` (a Result<T> expression), returns its status on failure,
/// otherwise moves the value into `lhs` (which may be a declaration).
#define SCREP_ASSIGN_OR_RETURN(lhs, rexpr) \
  SCREP_ASSIGN_OR_RETURN_IMPL_(SCREP_CONCAT_(_res_, __LINE__), lhs, rexpr)

#endif  // SCREP_COMMON_STATUS_H_
