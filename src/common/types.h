// Identifier types shared across modules.

#ifndef SCREP_COMMON_TYPES_H_
#define SCREP_COMMON_TYPES_H_

#include <cstdint>

namespace screp {

/// Global database version, as maintained by the certifier.  The database
/// starts at version 0 and the version is incremented each time an update
/// transaction commits (paper §IV).
using DbVersion = int64_t;

/// Sentinel: "no version requirement".
constexpr DbVersion kNoVersion = -1;

/// Globally unique transaction identifier (assigned by the middleware).
using TxnId = uint64_t;

/// Dense table identifier within a Database.
using TableId = int32_t;

/// Replica identifier (index into the system's replica list).
using ReplicaId = int32_t;
constexpr ReplicaId kNoReplica = -1;

/// Client session identifier (SID in the paper).
using SessionId = uint64_t;

/// Identifier of a registered transaction *type* (prepared transaction);
/// clients tag requests with it so the load balancer can look up the
/// statically extracted table-set (paper §IV-B).
using TxnTypeId = int32_t;
constexpr TxnTypeId kUnknownTxnType = -1;

}  // namespace screp

#endif  // SCREP_COMMON_TYPES_H_
