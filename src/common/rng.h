// Deterministic pseudo-random number generation and the distributions the
// workloads need.
//
// We use our own xoshiro256** generator rather than std::mt19937 so that
// streams are cheap to fork per-client and results are identical across
// standard-library implementations, which keeps every experiment
// reproducible from a single seed.

#ifndef SCREP_COMMON_RNG_H_
#define SCREP_COMMON_RNG_H_

#include <cmath>
#include <cstdint>

#include "common/logging.h"

namespace screp {

/// xoshiro256** 1.0 (Blackman & Vigna), seeded via SplitMix64.
class Rng {
 public:
  /// Seeds the generator; two Rng with the same seed produce the same stream.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  /// Re-seeds the generator.
  void Seed(uint64_t seed) {
    // SplitMix64 to spread an arbitrary 64-bit seed over the 256-bit state.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Forks an independent stream (for per-client generators).
  Rng Fork() { return Rng(Next() ^ 0xd2b74407b1ce6e93ULL); }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound). Pre-condition: bound > 0.
  uint64_t NextBounded(uint64_t bound) {
    SCREP_CHECK(bound > 0);
    // Lemire's multiply-shift rejection method.
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t l = static_cast<uint64_t>(m);
    if (l < bound) {
      uint64_t t = -bound % bound;
      while (l < t) {
        x = Next();
        m = static_cast<__uint128_t>(x) * bound;
        l = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive. Pre-condition: lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    SCREP_CHECK(lo <= hi);
    return lo + static_cast<int64_t>(
                    NextBounded(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli draw with probability `p` of true.
  bool NextBool(double p) { return NextDouble() < p; }

  /// Negative-exponential variate with the given mean (client think times,
  /// TPC-W spec clause 5.3.1.1).
  double NextExponential(double mean) {
    double u = NextDouble();
    // Avoid log(0).
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * std::log(u);
  }

  /// Zipf-like skewed pick in [0, n) with exponent `theta` in [0,1).
  /// theta = 0 degenerates to uniform. Uses the quantile approximation
  /// u^(1/(1-theta)) which is adequate for workload skew.
  uint64_t NextZipf(uint64_t n, double theta) {
    SCREP_CHECK(n > 0);
    if (theta <= 0.0) return NextBounded(n);
    double u = NextDouble();
    double v = std::pow(u, 1.0 / (1.0 - theta));
    uint64_t k = static_cast<uint64_t>(v * static_cast<double>(n));
    return k >= n ? n - 1 : k;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace screp

#endif  // SCREP_COMMON_RNG_H_
