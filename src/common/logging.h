// Minimal logging and invariant-checking facilities.
//
// SCREP_CHECK aborts the process on violated invariants (programming
// errors); operational failures are reported through Status instead.

#ifndef SCREP_COMMON_LOGGING_H_
#define SCREP_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace screp {

/// Severity of a log line.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

namespace internal {

/// Emits one formatted log line to stderr if `level` is at or above the
/// global threshold.
void LogMessage(LogLevel level, const char* file, int line,
                const std::string& message);

/// Aborts the process after printing the failed condition.
[[noreturn]] void CheckFailed(const char* file, int line,
                              const char* condition,
                              const std::string& message);

/// Stream-style collector used by the logging macros.
class LogStream {
 public:
  LogStream(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogStream() { LogMessage(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal

/// Sets the minimum severity that is actually emitted (default kWarn, so
/// library code is quiet unless something is wrong).
void SetLogLevel(LogLevel level);

/// Returns the current minimum emitted severity.
LogLevel GetLogLevel();

}  // namespace screp

#define SCREP_LOG(level)                                                    \
  ::screp::internal::LogStream(::screp::LogLevel::level, __FILE__, __LINE__)

#define SCREP_CHECK(condition)                                              \
  do {                                                                      \
    if (!(condition)) {                                                     \
      ::screp::internal::CheckFailed(__FILE__, __LINE__, #condition, "");   \
    }                                                                       \
  } while (0)

#define SCREP_CHECK_MSG(condition, msg)                                     \
  do {                                                                      \
    if (!(condition)) {                                                     \
      std::ostringstream _oss;                                              \
      _oss << msg;                                                          \
      ::screp::internal::CheckFailed(__FILE__, __LINE__, #condition,        \
                                     _oss.str());                           \
    }                                                                       \
  } while (0)

#endif  // SCREP_COMMON_LOGGING_H_
